//! CFU1: the MobileNetV2 1x1-convolution accelerator (paper §III-A).
//!
//! The image-classification case study grows this CFU incrementally, one
//! ladder step per optimization, reaching 55× on the 1x1 `CONV_2D`
//! operator. [`Cfu1Stage`] reproduces those steps: each stage enables a
//! superset of the previous stage's ops and changes the resource
//! footprint the way Figure 4 reports (usage peaks midway, then *drops*
//! as processing integrates into the CFU and CPU↔CFU data paths are
//! removed).
//!
//! The op map (all on `funct3 = 0`):
//!
//! | funct7 | op | stage | meaning |
//! |-------:|----|-------|---------|
//! | 0  | `RESET`            | PostProc    | clear all state |
//! | 1  | `SET_DEPTH_WORDS`  | PostProc    | input-vector length in words (`in_ch/4`) |
//! | 2  | `PUSH_BIAS`        | PostProc    | append per-channel bias |
//! | 3  | `PUSH_MULTIPLIER`  | PostProc    | append per-channel Q31 multiplier |
//! | 4  | `PUSH_SHIFT`       | PostProc    | append per-channel shift |
//! | 5  | `SET_OUTPUT_OFFSET`| PostProc    | output zero point |
//! | 6  | `SET_ACTIVATION`   | PostProc    | rs1 = min, rs2 = max |
//! | 7  | `SET_INPUT_OFFSET` | PostProc    | activation offset for MACs |
//! | 8  | `POSTPROC`         | PostProc    | rs1 = accumulator → clamped int8 |
//! | 16 | `WRITE_FILTER`     | HoldFilter  | append packed filter word |
//! | 17 | `READ_FILTER`      | HoldFilter  | rs1 = index → filter word |
//! | 18 | `WRITE_INPUT`      | HoldInput   | append packed input word |
//! | 19 | `READ_INPUT`       | HoldInput   | rs1 = index → input word |
//! | 20 | `MAC4`             | Mac4        | acc += dot4(rs1 inputs, rs2 filters) |
//! | 21 | `TAKE_ACC`         | Mac4        | read accumulator and clear |
//! | 22 | `REWIND`           | Mac4        | rewind input/channel cursors (new pixel) |
//! | 24 | `RUN1`             | Mac4Run1    | full dot product for one output channel |
//! | 25 | `RUN4`             | Mac4Run4    | four output channels, packed int8 result |
//!
//! At stage `InclPostproc` and beyond, `RUN1` returns the *post-processed*
//! int8 value instead of the raw accumulator.

use crate::blocks::{ChannelParams, MacArray, PostProcessor, Scratchpad};
use crate::interface::{Cfu, CfuError, CfuOp, CfuResponse};
use crate::resources::Resources;

/// Ladder steps of the MobileNetV2 CFU, in the order Figure 4 applies
/// them. (The first Figure-4 step, *SW*, is a pure software optimization
/// and has no CFU.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Cfu1Stage {
    /// `CFU postproc`: per-channel bias/multiplier/shift tables and the
    /// requantize+clamp pipeline live in the CFU (~55 cycles saved per
    /// output element).
    PostProc,
    /// `CFU hold filt`: filter words parked in a CFU scratchpad.
    HoldFilter,
    /// `CFU hold inp`: input words parked too (a wash on its own — the
    /// CPU pays shifts/sign-extensions to use word-packed values).
    HoldInput,
    /// `CFU MAC4`: 4-lane SIMD multiply-accumulate on packed operands.
    Mac4,
    /// `MAC4Run1`: the whole inner accumulation loop runs inside the CFU.
    Mac4Run1,
    /// `Incl postproc`: accumulation result feeds post-processing
    /// directly, no CPU intervention.
    InclPostproc,
    /// `Macc4Run4`: four int8 outputs packed into one 32-bit word per
    /// response, quadrupling write-back efficiency.
    Mac4Run4,
    /// `Overlap input`: input loading is double-buffered and overlaps
    /// computation.
    OverlapInput,
}

impl Cfu1Stage {
    /// All stages in ladder order.
    pub const ALL: [Cfu1Stage; 8] = [
        Cfu1Stage::PostProc,
        Cfu1Stage::HoldFilter,
        Cfu1Stage::HoldInput,
        Cfu1Stage::Mac4,
        Cfu1Stage::Mac4Run1,
        Cfu1Stage::InclPostproc,
        Cfu1Stage::Mac4Run4,
        Cfu1Stage::OverlapInput,
    ];

    /// The label Figure 4 uses for this step.
    pub fn label(self) -> &'static str {
        match self {
            Cfu1Stage::PostProc => "CFU postproc",
            Cfu1Stage::HoldFilter => "CFU hold filt",
            Cfu1Stage::HoldInput => "CFU hold inp",
            Cfu1Stage::Mac4 => "CFU MAC4",
            Cfu1Stage::Mac4Run1 => "MAC4Run1",
            Cfu1Stage::InclPostproc => "Incl postproc",
            Cfu1Stage::Mac4Run4 => "Macc4Run4",
            Cfu1Stage::OverlapInput => "Overlap input",
        }
    }
}

/// Capacity of the filter scratchpad in words. Sized for the largest
/// MobileNetV2 1x1 layer tile the kernels stream (filter rows for 4
/// output channels are resident at once, plus headroom for `HoldFilter`
/// stages that park whole layers).
pub const FILTER_WORDS: usize = 4096;
/// Capacity of the input scratchpad in words (one input column of up to
/// 1024 channels, double-buffered at the `OverlapInput` stage).
pub const INPUT_WORDS: usize = 256;

const OP_RESET: u8 = 0;
const OP_SET_DEPTH_WORDS: u8 = 1;
const OP_PUSH_BIAS: u8 = 2;
const OP_PUSH_MULTIPLIER: u8 = 3;
const OP_PUSH_SHIFT: u8 = 4;
const OP_SET_OUTPUT_OFFSET: u8 = 5;
const OP_SET_ACTIVATION: u8 = 6;
const OP_SET_INPUT_OFFSET: u8 = 7;
const OP_POSTPROC: u8 = 8;
const OP_WRITE_FILTER: u8 = 16;
const OP_READ_FILTER: u8 = 17;
const OP_WRITE_INPUT: u8 = 18;
const OP_READ_INPUT: u8 = 19;
const OP_MAC4: u8 = 20;
const OP_TAKE_ACC: u8 = 21;
const OP_REWIND: u8 = 22;
const OP_RUN1: u8 = 24;
const OP_RUN4: u8 = 25;

/// Typed op constructors so kernels don't hand-roll funct7 numbers.
pub mod ops {
    use super::*;

    /// Clear all CFU state.
    pub const RESET: CfuOp = op(OP_RESET);
    /// Set input-vector length in 4-byte words.
    pub const SET_DEPTH_WORDS: CfuOp = op(OP_SET_DEPTH_WORDS);
    /// Append a per-channel bias.
    pub const PUSH_BIAS: CfuOp = op(OP_PUSH_BIAS);
    /// Append a per-channel Q31 multiplier.
    pub const PUSH_MULTIPLIER: CfuOp = op(OP_PUSH_MULTIPLIER);
    /// Append a per-channel shift.
    pub const PUSH_SHIFT: CfuOp = op(OP_PUSH_SHIFT);
    /// Set the output zero point.
    pub const SET_OUTPUT_OFFSET: CfuOp = op(OP_SET_OUTPUT_OFFSET);
    /// Set the activation clamp range (rs1 = min, rs2 = max).
    pub const SET_ACTIVATION: CfuOp = op(OP_SET_ACTIVATION);
    /// Set the input offset added to activation lanes.
    pub const SET_INPUT_OFFSET: CfuOp = op(OP_SET_INPUT_OFFSET);
    /// Post-process one accumulator (rs1).
    pub const POSTPROC: CfuOp = op(OP_POSTPROC);
    /// Append a packed filter word.
    pub const WRITE_FILTER: CfuOp = op(OP_WRITE_FILTER);
    /// Read filter word rs1.
    pub const READ_FILTER: CfuOp = op(OP_READ_FILTER);
    /// Append a packed input word.
    pub const WRITE_INPUT: CfuOp = op(OP_WRITE_INPUT);
    /// Read input word rs1.
    pub const READ_INPUT: CfuOp = op(OP_READ_INPUT);
    /// Explicit 4-lane MAC of rs1 (inputs) and rs2 (filters).
    pub const MAC4: CfuOp = op(OP_MAC4);
    /// Read and clear the accumulator.
    pub const TAKE_ACC: CfuOp = op(OP_TAKE_ACC);
    /// Rewind input/filter/channel cursors for a new output pixel.
    pub const REWIND: CfuOp = op(OP_REWIND);
    /// Dot product of the input buffer with the next filter row.
    pub const RUN1: CfuOp = op(OP_RUN1);
    /// Four `RUN1`s with packed int8 results.
    pub const RUN4: CfuOp = op(OP_RUN4);

    const fn op(funct7: u8) -> CfuOp {
        CfuOp::from_parts(funct7, 0)
    }
}

/// The MobileNetV2 1x1-convolution CFU at a chosen ladder stage.
#[derive(Debug, Clone)]
pub struct Cfu1 {
    stage: Cfu1Stage,
    depth_words: u32,
    filters: Scratchpad,
    inputs: Scratchpad,
    mac: MacArray,
    post: PostProcessor,
    /// Index of the next filter row `RUN1`/`RUN4` consumes.
    run_channel: usize,
    /// Per-channel parameter staging (biases arrive before multipliers).
    staged_bias: Vec<i32>,
    staged_mult: Vec<i32>,
    staged_shift: Vec<i32>,
}

impl Cfu1 {
    /// Creates the CFU at `stage`.
    pub fn new(stage: Cfu1Stage) -> Self {
        Cfu1 {
            stage,
            depth_words: 0,
            filters: Scratchpad::new(FILTER_WORDS),
            inputs: Scratchpad::new(INPUT_WORDS),
            mac: MacArray::new(4),
            post: PostProcessor::new(),
            run_channel: 0,
            staged_bias: Vec::new(),
            staged_mult: Vec::new(),
            staged_shift: Vec::new(),
        }
    }

    /// The fully-grown design (`Overlap input`) the paper calls **CFU1**
    /// in the design-space exploration.
    pub fn full() -> Self {
        Cfu1::new(Cfu1Stage::OverlapInput)
    }

    /// The configured ladder stage.
    pub fn stage(&self) -> Cfu1Stage {
        self.stage
    }

    fn require(&self, op: CfuOp, needed: Cfu1Stage) -> Result<(), CfuError> {
        if self.stage >= needed {
            Ok(())
        } else {
            Err(CfuError::UnsupportedOp { op, cfu: format!("cfu1[{}]", self.stage.label()) })
        }
    }

    fn rebuild_post_table(&mut self) {
        self.post.clear();
        let n = self.staged_bias.len().min(self.staged_mult.len()).min(self.staged_shift.len());
        for i in 0..n {
            self.post.push_channel(ChannelParams {
                bias: self.staged_bias[i],
                multiplier: self.staged_mult[i],
                shift: self.staged_shift[i],
            });
        }
    }

    /// One full dot product of the input buffer against filter row
    /// `self.run_channel`. Returns (raw accumulator, cycles).
    fn run_one(&mut self) -> (i32, u32) {
        let words = self.depth_words as usize;
        let base = self.run_channel * words;
        let mut acc = self.mac.take();
        for w in 0..words {
            let inp = self.inputs.read(w % INPUT_WORDS.max(1));
            let filt = self.filters.read((base + w) % FILTER_WORDS);
            self.mac.set_acc(acc);
            acc = self.mac.mac(inp, filt);
        }
        self.mac.take();
        self.run_channel += 1;
        // The filter and input scratchpads are single-ported BRAMs, so
        // the sequencer alternates filter/input reads: one MAC4 every two
        // cycles — 0.5 cycles per MAC, the paper's "less than one cycle
        // per MAC". Start-up is charged once per response by the RUN ops.
        (acc, 2 * words as u32)
    }

    fn postproc_value(&mut self, acc: i32) -> i32 {
        self.post.process(acc)
    }
}

impl Cfu for Cfu1 {
    fn name(&self) -> &str {
        "cfu1-mnv2"
    }

    fn execute(&mut self, op: CfuOp, rs1: u32, rs2: u32) -> Result<CfuResponse, CfuError> {
        use Cfu1Stage as S;
        if op.funct3() != 0 {
            return Err(CfuError::UnsupportedOp { op, cfu: self.name().to_owned() });
        }
        match op.funct7() {
            OP_RESET => {
                self.reset_state();
                Ok(CfuResponse::single(0))
            }
            OP_SET_DEPTH_WORDS => {
                if rs1 as usize > INPUT_WORDS {
                    return Err(CfuError::Protocol {
                        op,
                        reason: format!("depth {rs1} words exceeds input buffer ({INPUT_WORDS})"),
                    });
                }
                self.depth_words = rs1;
                Ok(CfuResponse::single(0))
            }
            OP_PUSH_BIAS => {
                self.staged_bias.push(rs1 as i32);
                self.rebuild_post_table();
                Ok(CfuResponse::single(0))
            }
            OP_PUSH_MULTIPLIER => {
                self.staged_mult.push(rs1 as i32);
                self.rebuild_post_table();
                Ok(CfuResponse::single(0))
            }
            OP_PUSH_SHIFT => {
                self.staged_shift.push(rs1 as i32);
                self.rebuild_post_table();
                Ok(CfuResponse::single(0))
            }
            OP_SET_OUTPUT_OFFSET => {
                self.post.set_output_offset(rs1 as i32);
                Ok(CfuResponse::single(0))
            }
            OP_SET_ACTIVATION => {
                self.post.set_activation_range(rs1 as i32, rs2 as i32);
                Ok(CfuResponse::single(0))
            }
            OP_SET_INPUT_OFFSET => {
                self.mac.set_input_offset(rs1 as i32);
                Ok(CfuResponse::single(0))
            }
            OP_POSTPROC => {
                if self.post.channels() == 0 {
                    return Err(CfuError::Protocol {
                        op,
                        reason: "no channel parameters loaded".into(),
                    });
                }
                let v = self.postproc_value(rs1 as i32);
                Ok(CfuResponse::single(v as u32))
            }
            OP_WRITE_FILTER => {
                self.require(op, S::HoldFilter)?;
                self.filters.push(rs1);
                Ok(CfuResponse::single(0))
            }
            OP_READ_FILTER => {
                self.require(op, S::HoldFilter)?;
                Ok(CfuResponse::single(self.filters.read(rs1 as usize % FILTER_WORDS)))
            }
            OP_WRITE_INPUT => {
                self.require(op, S::HoldInput)?;
                self.inputs.push(rs1);
                Ok(CfuResponse::single(0))
            }
            OP_READ_INPUT => {
                self.require(op, S::HoldInput)?;
                Ok(CfuResponse::single(self.inputs.read(rs1 as usize % INPUT_WORDS)))
            }
            OP_MAC4 => {
                self.require(op, S::Mac4)?;
                Ok(CfuResponse::single(self.mac.mac(rs1, rs2) as u32))
            }
            OP_TAKE_ACC => {
                self.require(op, S::Mac4)?;
                Ok(CfuResponse::single(self.mac.take() as u32))
            }
            OP_REWIND => {
                // Rewinding cursors is cheap control logic, available as
                // soon as the CFU exists at all.
                self.require(op, S::PostProc)?;
                self.inputs.rewind();
                self.run_channel = 0;
                self.post.rewind();
                self.mac.take();
                Ok(CfuResponse::single(0))
            }
            OP_RUN1 => {
                self.require(op, S::Mac4Run1)?;
                let (acc, cycles) = self.run_one();
                let cycles = cycles + 2; // sequencer start-up + drain
                let value = if self.stage >= S::InclPostproc {
                    if self.post.channels() == 0 {
                        return Err(CfuError::Protocol {
                            op,
                            reason: "no channel parameters loaded".into(),
                        });
                    }
                    self.postproc_value(acc) as u32
                } else {
                    acc as u32
                };
                Ok(CfuResponse::multi(value, cycles))
            }
            OP_RUN4 => {
                self.require(op, S::Mac4Run4)?;
                if self.post.channels() == 0 {
                    return Err(CfuError::Protocol {
                        op,
                        reason: "no channel parameters loaded".into(),
                    });
                }
                let mut packed = [0u8; 4];
                let mut cycles = 2; // one sequencer start-up for all four
                for out in &mut packed {
                    let (acc, c) = self.run_one();
                    cycles += c;
                    *out = (self.postproc_value(acc) as i8) as u8;
                }
                // At the OverlapInput stage the *input loading* for the
                // next pixel hides under this latency (double-buffered
                // input bank); the hiding is modelled where the loads are
                // issued, in the kernel.
                let _ = rs2;
                Ok(CfuResponse::multi(u32::from_le_bytes(packed), cycles))
            }
            _ => Err(CfuError::UnsupportedOp { op, cfu: self.name().to_owned() }),
        }
    }

    fn reset(&mut self) {
        self.reset_state();
    }

    fn resources(&self) -> Resources {
        use Cfu1Stage as S;
        // Interface shim (decode, result mux) present at every stage.
        let mut r = Resources { luts: 140, ffs: 110, brams: 0, dsps: 0 };
        r += self.post.resources();
        if self.stage >= S::HoldFilter {
            r += self.filters.resources();
        }
        if self.stage >= S::HoldInput {
            r += self.inputs.resources();
            // CPU-facing unpack/read mux (removed again later).
            if self.stage < S::InclPostproc {
                r += Resources::luts(180);
            }
        }
        if self.stage >= S::Mac4 {
            r += self.mac.resources();
        }
        if self.stage >= S::Mac4Run1 {
            r += Resources { luts: 210, ffs: 140, brams: 0, dsps: 0 }; // sequencer
        }
        if self.stage >= S::InclPostproc {
            // Integration removes the accumulator read-back path.
            r = r.saturating_sub(&Resources::luts(120));
        }
        if self.stage >= S::Mac4Run4 {
            r += Resources { luts: 90, ffs: 48, brams: 0, dsps: 0 }; // output packer
        }
        if self.stage >= S::OverlapInput {
            r += Resources { luts: 70, ffs: 40, brams: 2, dsps: 0 }; // 2nd input bank
        }
        r
    }

    fn supports(&self, op: CfuOp) -> bool {
        use Cfu1Stage as S;
        if op.funct3() != 0 {
            return false;
        }
        let needed = match op.funct7() {
            OP_RESET..=OP_POSTPROC | OP_REWIND => S::PostProc,
            OP_WRITE_FILTER | OP_READ_FILTER => S::HoldFilter,
            OP_WRITE_INPUT | OP_READ_INPUT => S::HoldInput,
            OP_MAC4 | OP_TAKE_ACC => S::Mac4,
            OP_RUN1 => S::Mac4Run1,
            OP_RUN4 => S::Mac4Run4,
            _ => return false,
        };
        self.stage >= needed
    }
}

impl Cfu1 {
    fn reset_state(&mut self) {
        self.depth_words = 0;
        self.filters.reset();
        self.inputs.reset();
        self.mac.reset();
        self.post.reset();
        self.run_channel = 0;
        self.staged_bias.clear();
        self.staged_mult.clear();
        self.staged_shift.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arith::{self, pack_i8x4};

    fn exec(cfu: &mut Cfu1, op: CfuOp, rs1: u32, rs2: u32) -> u32 {
        cfu.execute(op, rs1, rs2).unwrap().value
    }

    /// Loads a 2-channel, 8-input-deep layer and checks RUN4-free paths.
    fn load_layer(cfu: &mut Cfu1, scale: f64) {
        let (m, s) = arith::quantize_multiplier(scale);
        exec(cfu, ops::SET_DEPTH_WORDS, 2, 0); // 8 input channels
        for _ in 0..4 {
            exec(cfu, ops::PUSH_BIAS, 100u32, 0);
            exec(cfu, ops::PUSH_MULTIPLIER, m as u32, 0);
            exec(cfu, ops::PUSH_SHIFT, s as u32, 0);
        }
        exec(cfu, ops::SET_OUTPUT_OFFSET, 0, 0);
        exec(cfu, ops::SET_ACTIVATION, (-128i32) as u32, 127);
        exec(cfu, ops::SET_INPUT_OFFSET, 0, 0);
    }

    #[test]
    fn postproc_matches_blocks_pipeline() {
        let mut cfu = Cfu1::new(Cfu1Stage::PostProc);
        load_layer(&mut cfu, 0.5);
        // (100 + 100) * 0.5 = 100
        assert_eq!(exec(&mut cfu, ops::POSTPROC, 100, 0) as i32, 100);
    }

    #[test]
    fn stage_gating_rejects_future_ops() {
        let mut cfu = Cfu1::new(Cfu1Stage::PostProc);
        assert!(matches!(
            cfu.execute(ops::WRITE_FILTER, 0, 0),
            Err(CfuError::UnsupportedOp { .. })
        ));
        assert!(!cfu.supports(ops::RUN4));
        assert!(cfu.supports(ops::POSTPROC));
        let full = Cfu1::full();
        assert!(full.supports(ops::RUN4));
    }

    #[test]
    fn mac4_accumulates_with_offset() {
        let mut cfu = Cfu1::new(Cfu1Stage::Mac4);
        exec(&mut cfu, ops::SET_INPUT_OFFSET, 128, 0);
        let a = pack_i8x4([-128, 0, 1, 2]);
        let f = pack_i8x4([1, 2, 3, 4]);
        let r = exec(&mut cfu, ops::MAC4, a, f) as i32;
        assert_eq!(r, arith::dot4_offset(a, f, 128));
        let taken = exec(&mut cfu, ops::TAKE_ACC, 0, 0) as i32;
        assert_eq!(taken, r);
        assert_eq!(exec(&mut cfu, ops::TAKE_ACC, 0, 0), 0);
    }

    #[test]
    fn run1_equals_explicit_mac_loop() {
        let mut cfu = Cfu1::new(Cfu1Stage::Mac4Run1);
        load_layer(&mut cfu, 1.0);
        let inputs = [pack_i8x4([1, 2, 3, 4]), pack_i8x4([5, 6, 7, 8])];
        let filt_c0 = [pack_i8x4([1, 1, 1, 1]), pack_i8x4([2, 2, 2, 2])];
        let filt_c1 = [pack_i8x4([-1, -1, -1, -1]), pack_i8x4([1, 0, 0, 0])];
        for w in filt_c0.iter().chain(&filt_c1) {
            exec(&mut cfu, ops::WRITE_FILTER, *w, 0);
        }
        for w in inputs {
            exec(&mut cfu, ops::WRITE_INPUT, w, 0);
        }
        let r0 = exec(&mut cfu, ops::RUN1, 0, 0) as i32;
        let expect0 = arith::dot4(inputs[0], filt_c0[0]) + arith::dot4(inputs[1], filt_c0[1]);
        assert_eq!(r0, expect0);
        let r1 = exec(&mut cfu, ops::RUN1, 0, 0) as i32;
        let expect1 = arith::dot4(inputs[0], filt_c1[0]) + arith::dot4(inputs[1], filt_c1[1]);
        assert_eq!(r1, expect1);
    }

    #[test]
    fn run1_latency_tracks_depth() {
        let mut cfu = Cfu1::new(Cfu1Stage::Mac4Run1);
        load_layer(&mut cfu, 1.0);
        for _ in 0..2 {
            exec(&mut cfu, ops::WRITE_INPUT, 0, 0);
            exec(&mut cfu, ops::WRITE_FILTER, 0, 0);
        }
        let resp = cfu.execute(ops::RUN1, 0, 0).unwrap();
        assert_eq!(resp.latency, 2 * 2 + 2);
    }

    #[test]
    fn incl_postproc_returns_processed_value() {
        let mut raw = Cfu1::new(Cfu1Stage::Mac4Run1);
        let mut fused = Cfu1::new(Cfu1Stage::InclPostproc);
        for cfu in [&mut raw, &mut fused] {
            load_layer(cfu, 0.5);
            exec(cfu, ops::WRITE_INPUT, pack_i8x4([10, 10, 10, 10]), 0);
            exec(cfu, ops::WRITE_INPUT, pack_i8x4([10, 10, 10, 10]), 0);
            for _ in 0..2 {
                exec(cfu, ops::WRITE_FILTER, pack_i8x4([1, 1, 1, 1]), 0);
            }
        }
        let acc = exec(&mut raw, ops::RUN1, 0, 0) as i32;
        assert_eq!(acc, 80);
        let processed = exec(&mut fused, ops::RUN1, 0, 0) as i32;
        assert_eq!(processed, (80 + 100) / 2); // (acc + bias) * 0.5
    }

    #[test]
    fn run4_packs_four_channels() {
        let mut cfu = Cfu1::new(Cfu1Stage::Mac4Run4);
        load_layer(&mut cfu, 1.0);
        exec(&mut cfu, ops::WRITE_INPUT, pack_i8x4([1, 0, 0, 0]), 0);
        exec(&mut cfu, ops::WRITE_INPUT, pack_i8x4([0, 0, 0, 0]), 0);
        // Four filter rows picking out multiples of the first input lane.
        for c in 0..4i8 {
            exec(&mut cfu, ops::WRITE_FILTER, pack_i8x4([c, 0, 0, 0]), 0);
            exec(&mut cfu, ops::WRITE_FILTER, 0, 0);
        }
        // bias=100, scale 1.0 → clamp(c*1 + 100) = 100..103
        let packed = exec(&mut cfu, ops::RUN4, 0, 0);
        assert_eq!(arith::unpack_i8x4(packed), [100, 101, 102, 103]);
    }

    #[test]
    fn run4_latency_streams_channels() {
        // Four channels back to back: 4 * depth_words + one start-up.
        let mut cfu = Cfu1::new(Cfu1Stage::Mac4Run4);
        load_layer(&mut cfu, 1.0);
        for _ in 0..2 {
            exec(&mut cfu, ops::WRITE_INPUT, 0, 0);
        }
        for _ in 0..8 {
            exec(&mut cfu, ops::WRITE_FILTER, 0, 0);
        }
        let latency = cfu.execute(ops::RUN4, 0, 0).unwrap().latency;
        assert_eq!(latency, 4 * (2 * 2) + 2);
        // The overlap stage has the same response latency; the win is the
        // hidden input loading, modelled in the kernels.
        let mut overlap = Cfu1::new(Cfu1Stage::OverlapInput);
        load_layer(&mut overlap, 1.0);
        for _ in 0..2 {
            exec(&mut overlap, ops::WRITE_INPUT, 0, 0);
        }
        for _ in 0..8 {
            exec(&mut overlap, ops::WRITE_FILTER, 0, 0);
        }
        assert_eq!(overlap.execute(ops::RUN4, 0, 0).unwrap().latency, latency);
    }

    #[test]
    fn rewind_restarts_pixel() {
        let mut cfu = Cfu1::new(Cfu1Stage::Mac4Run1);
        load_layer(&mut cfu, 1.0);
        exec(&mut cfu, ops::WRITE_INPUT, pack_i8x4([1, 1, 1, 1]), 0);
        exec(&mut cfu, ops::WRITE_INPUT, pack_i8x4([1, 1, 1, 1]), 0);
        for _ in 0..2 {
            exec(&mut cfu, ops::WRITE_FILTER, pack_i8x4([3, 3, 3, 3]), 0);
        }
        let first = exec(&mut cfu, ops::RUN1, 0, 0);
        exec(&mut cfu, ops::REWIND, 0, 0);
        let again = exec(&mut cfu, ops::RUN1, 0, 0);
        assert_eq!(first, again);
    }

    #[test]
    fn resource_ladder_peaks_midway_and_descends() {
        let usage: Vec<u32> =
            Cfu1Stage::ALL.iter().map(|&s| Cfu1::new(s).resources().luts).collect();
        let peak_idx = usage.iter().enumerate().max_by_key(|(_, v)| **v).unwrap().0;
        assert!((2..=5).contains(&peak_idx), "peak at step {peak_idx}: {usage:?}");
        // Resource usage must dip after integration (InclPostproc < peak).
        assert!(usage[5] < usage[peak_idx] || usage[6] < usage[4], "{usage:?}");
        // DSPs appear exactly when the MAC array does.
        assert_eq!(Cfu1::new(Cfu1Stage::HoldInput).resources().dsps, 0);
        assert_eq!(Cfu1::new(Cfu1Stage::Mac4).resources().dsps, 4);
    }

    #[test]
    fn depth_overflow_is_protocol_error() {
        let mut cfu = Cfu1::full();
        let err = cfu.execute(ops::SET_DEPTH_WORDS, INPUT_WORDS as u32 + 1, 0).unwrap_err();
        assert!(matches!(err, CfuError::Protocol { .. }));
    }

    #[test]
    fn reset_clears_everything() {
        let mut cfu = Cfu1::full();
        load_layer(&mut cfu, 1.0);
        exec(&mut cfu, ops::WRITE_INPUT, 7, 0);
        cfu.reset();
        assert!(cfu.execute(ops::POSTPROC, 0, 0).is_err()); // params gone
    }
}
