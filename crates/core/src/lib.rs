//! Custom Function Units (CFUs): the heart of CFU Playground.
//!
//! A CFU is a small piece of custom logic grafted onto a soft CPU's
//! datapath. It is invoked by R-format custom instructions: two operands
//! arrive from the register file, `funct7`/`funct3` select the operation,
//! and one 32-bit result is written back. A CFU may hold state (buffers,
//! accumulators, per-channel parameter tables), may take multiple cycles,
//! and may be pipelined.
//!
//! This crate models that contract precisely:
//!
//! * [`Cfu`] — the CPU↔CFU interface trait (the logical boundary shown in
//!   the paper's Figure 2),
//! * [`blocks`] — reusable datapath building blocks (scratchpads, SIMD
//!   multiply-accumulate arrays, output post-processing),
//! * [`Cfu1`](cfu1::Cfu1) — the MobileNetV2 1x1-convolution accelerator
//!   grown step by step in the paper's Figure 4 ladder,
//! * [`Cfu2`](cfu2::Cfu2) — the Keyword-Spotting SIMD MAC + post-process
//!   CFU from the Figure 6 ladder,
//! * [`emu`] — the "software emulation of your CFU" debug flow from
//!   §II-E: wrap a plain function as a [`Cfu`], or run a hardware model
//!   and its emulation side by side and compare output streams,
//! * [`verify`] — directed/random op-stream equivalence testing,
//! * [`Resources`] — the yosys-report stand-in: LUT/FF/BRAM/DSP estimates
//!   for every block, so designs can be fit-checked against board budgets.
//!
//! # Example: a SIMD byte-add CFU and its software emulation
//!
//! ```
//! use cfu_core::{Cfu, CfuOp, templates::SimdAddCfu, emu::SwCfu};
//! use cfu_core::verify::{equivalence_check, OpStream};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut hw = SimdAddCfu::new();
//! // The paper's debugging flow: a functionally equivalent C-level model.
//! let mut sw = SwCfu::new("simd_add_emu", |_, a: u32, b: u32| {
//!     let mut out = 0u32;
//!     for lane in 0..4 {
//!         let s = ((a >> (8 * lane)) as u8).wrapping_add((b >> (8 * lane)) as u8);
//!         out |= u32::from(s) << (8 * lane);
//!     }
//!     out
//! });
//! let stream = OpStream::random(42, 1000, &[CfuOp::new(0, 0)]);
//! equivalence_check(&mut hw, &mut sw, &stream)?;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arith;
pub mod blocks;
pub mod cfu1;
pub mod cfu2;
pub mod emu;
mod interface;
mod resources;
pub mod templates;
pub mod trace;
pub mod verify;

pub use interface::{Cfu, CfuError, CfuOp, CfuResponse, NullCfu};
pub use resources::Resources;
