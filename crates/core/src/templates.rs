//! Starter CFUs, mirroring the example CFUs that ship with CFU Playground
//! (`simd_add`, bit-reversal, and friends) for the out-of-the-box
//! experience.

use crate::interface::{Cfu, CfuError, CfuOp, CfuResponse};
use crate::resources::Resources;

/// Four-lane 8-bit SIMD adder — the paper's own example custom
/// instruction (`#define simd_add(a, b) cfu_op(1, 3, (a), (b))`).
///
/// Implements two ops:
/// * `funct7 = 0`: lane-wise `a + b` (wrapping per byte lane),
/// * `funct7 = 1`: lane-wise saturating signed add.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimdAddCfu;

impl SimdAddCfu {
    /// Creates the CFU.
    pub fn new() -> Self {
        SimdAddCfu
    }
}

impl Cfu for SimdAddCfu {
    fn name(&self) -> &str {
        "simd_add"
    }

    fn execute(&mut self, op: CfuOp, rs1: u32, rs2: u32) -> Result<CfuResponse, CfuError> {
        let a = rs1.to_le_bytes();
        let b = rs2.to_le_bytes();
        let value = match op.funct7() {
            0 => u32::from_le_bytes([
                a[0].wrapping_add(b[0]),
                a[1].wrapping_add(b[1]),
                a[2].wrapping_add(b[2]),
                a[3].wrapping_add(b[3]),
            ]),
            1 => {
                let mut out = [0u8; 4];
                for i in 0..4 {
                    out[i] = (a[i] as i8).saturating_add(b[i] as i8) as u8;
                }
                u32::from_le_bytes(out)
            }
            _ => return Err(CfuError::UnsupportedOp { op, cfu: self.name().to_owned() }),
        };
        Ok(CfuResponse::single(value))
    }

    fn reset(&mut self) {}

    fn resources(&self) -> Resources {
        // Four 8-bit adders with lane-carry breaks: trivial.
        Resources { luts: 48, ffs: 0, brams: 0, dsps: 0 }
    }

    fn supports(&self, op: CfuOp) -> bool {
        op.funct7() <= 1
    }
}

/// Population count / bit-reverse utility CFU (two classic single-cycle
/// bit-manipulation accelerators).
///
/// * `funct7 = 0`: popcount of `rs1` (ignores `rs2`),
/// * `funct7 = 1`: bit-reverse of `rs1`,
/// * `funct7 = 2`: count leading zeros of `rs1`.
#[derive(Debug, Clone, Copy, Default)]
pub struct BitOpsCfu;

impl BitOpsCfu {
    /// Creates the CFU.
    pub fn new() -> Self {
        BitOpsCfu
    }
}

impl Cfu for BitOpsCfu {
    fn name(&self) -> &str {
        "bit_ops"
    }

    fn execute(&mut self, op: CfuOp, rs1: u32, _rs2: u32) -> Result<CfuResponse, CfuError> {
        let value = match op.funct7() {
            0 => rs1.count_ones(),
            1 => rs1.reverse_bits(),
            2 => rs1.leading_zeros(),
            _ => return Err(CfuError::UnsupportedOp { op, cfu: self.name().to_owned() }),
        };
        Ok(CfuResponse::single(value))
    }

    fn reset(&mut self) {}

    fn resources(&self) -> Resources {
        Resources { luts: 96, ffs: 0, brams: 0, dsps: 0 }
    }

    fn supports(&self, op: CfuOp) -> bool {
        op.funct7() <= 2
    }
}

/// A stateful accumulator CFU, demonstrating that "a CFU can support
/// state": `funct7 = 0` accumulates `rs1 * rs2`, `funct7 = 1` reads and
/// clears.
#[derive(Debug, Clone, Copy, Default)]
pub struct MacCfu {
    acc: i64,
}

impl MacCfu {
    /// Creates the CFU with a zero accumulator.
    pub fn new() -> Self {
        MacCfu::default()
    }

    /// Current accumulator (test visibility).
    pub fn acc(&self) -> i64 {
        self.acc
    }
}

impl Cfu for MacCfu {
    fn name(&self) -> &str {
        "mac"
    }

    fn execute(&mut self, op: CfuOp, rs1: u32, rs2: u32) -> Result<CfuResponse, CfuError> {
        match op.funct7() {
            0 => {
                self.acc += i64::from(rs1 as i32) * i64::from(rs2 as i32);
                Ok(CfuResponse::single(self.acc as u32))
            }
            1 => {
                let v = self.acc as u32;
                self.acc = 0;
                Ok(CfuResponse::single(v))
            }
            _ => Err(CfuError::UnsupportedOp { op, cfu: self.name().to_owned() }),
        }
    }

    fn reset(&mut self) {
        self.acc = 0;
    }

    fn resources(&self) -> Resources {
        Resources { luts: 60, ffs: 64, brams: 0, dsps: 1 }
    }

    fn supports(&self, op: CfuOp) -> bool {
        op.funct7() <= 1
    }
}

/// A CRC-32 (IEEE 802.3) CFU: the classic "long tail of low-volume
/// applications" accelerator. Software CRC needs ~8 instructions per
/// *bit*; this unit folds a whole 32-bit word per custom instruction.
///
/// * `funct7 = 0`: reset the running CRC to `0xFFFF_FFFF`,
/// * `funct7 = 1`: fold `rs1` (one little-endian word) into the CRC,
///   returns the running (non-finalized) remainder,
/// * `funct7 = 2`: read the finalized CRC (`!state`).
#[derive(Debug, Clone, Copy)]
pub struct Crc32Cfu {
    state: u32,
}

impl Default for Crc32Cfu {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32Cfu {
    /// Creates the CFU in the reset state.
    pub fn new() -> Self {
        Crc32Cfu { state: 0xFFFF_FFFF }
    }

    /// Bit-serial update (what the hardware LFSR does in 8 steps/byte,
    /// all within one cycle of combinational unrolling).
    fn fold_byte(crc: u32, byte: u8) -> u32 {
        let mut crc = crc ^ u32::from(byte);
        for _ in 0..8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
        }
        crc
    }
}

impl Cfu for Crc32Cfu {
    fn name(&self) -> &str {
        "crc32"
    }

    fn execute(&mut self, op: CfuOp, rs1: u32, _rs2: u32) -> Result<CfuResponse, CfuError> {
        match op.funct7() {
            0 => {
                self.state = 0xFFFF_FFFF;
                Ok(CfuResponse::single(0))
            }
            1 => {
                for byte in rs1.to_le_bytes() {
                    self.state = Self::fold_byte(self.state, byte);
                }
                Ok(CfuResponse::single(self.state))
            }
            2 => Ok(CfuResponse::single(!self.state)),
            _ => Err(CfuError::UnsupportedOp { op, cfu: self.name().to_owned() }),
        }
    }

    fn reset(&mut self) {
        self.state = 0xFFFF_FFFF;
    }

    fn resources(&self) -> Resources {
        // A 32-bit-wide unrolled LFSR is a XOR tree: cheap in LUTs.
        Resources { luts: 180, ffs: 32, brams: 0, dsps: 0 }
    }

    fn supports(&self, op: CfuOp) -> bool {
        op.funct7() <= 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // CRC32("123456789") = 0xCBF43926 (the check value of IEEE CRC-32).
        let mut cfu = Crc32Cfu::new();
        cfu.execute(CfuOp::new(0, 0), 0, 0).unwrap();
        let data = b"123456789";
        // Feed two whole words, then the trailing byte via a byte-wise
        // software tail (as the driver code would).
        for chunk in data.chunks(4) {
            if chunk.len() == 4 {
                let w = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
                cfu.execute(CfuOp::new(1, 0), w, 0).unwrap();
            } else {
                for &b in chunk {
                    cfu.state = Crc32Cfu::fold_byte(cfu.state, b);
                }
            }
        }
        let crc = cfu.execute(CfuOp::new(2, 0), 0, 0).unwrap().value;
        assert_eq!(crc, 0xCBF4_3926);
    }

    #[test]
    fn crc32_reset_between_messages() {
        let mut cfu = Crc32Cfu::new();
        cfu.execute(CfuOp::new(1, 0), 0xDEAD_BEEF, 0).unwrap();
        cfu.execute(CfuOp::new(0, 0), 0, 0).unwrap();
        let fresh = cfu.execute(CfuOp::new(2, 0), 0, 0).unwrap().value;
        assert_eq!(fresh, !0xFFFF_FFFFu32); // CRC of empty message
    }

    #[test]
    fn simd_add_lanes_do_not_carry() {
        let mut cfu = SimdAddCfu::new();
        let r = cfu.execute(CfuOp::new(0, 0), 0x00FF_00FF, 0x0001_0001).unwrap();
        assert_eq!(r.value, 0x0000_0000);
    }

    #[test]
    fn simd_add_saturating() {
        let mut cfu = SimdAddCfu::new();
        // 127 + 1 saturates to 127 per lane.
        let r = cfu.execute(CfuOp::new(1, 0), 0x7F7F_7F7F, 0x0101_0101).unwrap();
        assert_eq!(r.value, 0x7F7F_7F7F);
        // -128 + -1 saturates to -128.
        let r = cfu.execute(CfuOp::new(1, 0), 0x8080_8080, 0xFFFF_FFFF).unwrap();
        assert_eq!(r.value, 0x8080_8080);
    }

    #[test]
    fn bit_ops() {
        let mut cfu = BitOpsCfu::new();
        assert_eq!(cfu.execute(CfuOp::new(0, 0), 0xF0F0, 0).unwrap().value, 8);
        assert_eq!(cfu.execute(CfuOp::new(1, 0), 1, 0).unwrap().value, 0x8000_0000);
        assert_eq!(cfu.execute(CfuOp::new(2, 0), 0x0000_8000, 0).unwrap().value, 16);
        assert!(cfu.execute(CfuOp::new(9, 0), 0, 0).is_err());
    }

    #[test]
    fn mac_state_and_reset() {
        let mut cfu = MacCfu::new();
        cfu.execute(CfuOp::new(0, 0), 3, 4).unwrap();
        let r = cfu.execute(CfuOp::new(0, 0), 5, 6).unwrap();
        assert_eq!(r.value, 42);
        assert_eq!(cfu.execute(CfuOp::new(1, 0), 0, 0).unwrap().value, 42);
        assert_eq!(cfu.acc(), 0);
        cfu.execute(CfuOp::new(0, 0), 1, 1).unwrap();
        cfu.reset();
        assert_eq!(cfu.acc(), 0);
    }

    #[test]
    fn mac_signed_multiply() {
        let mut cfu = MacCfu::new();
        let r = cfu.execute(CfuOp::new(0, 0), (-3i32) as u32, 4).unwrap();
        assert_eq!(r.value as i32, -12);
    }
}
