//! CFU-level unit testing: directed and random op streams, compared
//! between two implementations (§II-E: "random or directed CFU-level unit
//! tests ... feed the same sequence of inputs to both the real CFU and to
//! the software emulation, and expect to see the same sequence of
//! outputs").

use std::fmt;

use crate::emu::Divergence;
use crate::interface::{Cfu, CfuOp};

/// A sequence of `(op, rs1, rs2)` stimuli.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpStream {
    items: Vec<(CfuOp, u32, u32)>,
}

impl OpStream {
    /// An empty stream to extend manually.
    pub fn new() -> Self {
        OpStream { items: Vec::new() }
    }

    /// A directed stream from explicit stimuli.
    pub fn directed(items: Vec<(CfuOp, u32, u32)>) -> Self {
        OpStream { items }
    }

    /// A reproducible pseudo-random stream of `count` ops drawn uniformly
    /// from `ops`, with operands from a xorshift generator seeded by
    /// `seed`. Operands are biased toward interesting values (0, ±1,
    /// extremes) one time in four.
    ///
    /// # Panics
    ///
    /// Panics if `ops` is empty.
    pub fn random(seed: u64, count: usize, ops: &[CfuOp]) -> Self {
        assert!(!ops.is_empty(), "need at least one op to draw from");
        let mut state = seed | 1;
        let mut next = move || {
            // xorshift64*
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };
        const EDGES: [u32; 8] =
            [0, 1, 0xFFFF_FFFF, 0x7FFF_FFFF, 0x8000_0000, 0x0000_00FF, 0x7F7F_7F7F, 0x8080_8080];
        let mut items = Vec::with_capacity(count);
        for _ in 0..count {
            let r = next();
            let op = ops[(r % ops.len() as u64) as usize];
            let pick = |r: u64| {
                if r.is_multiple_of(4) {
                    EDGES[(r >> 2) as usize % EDGES.len()]
                } else {
                    (r >> 16) as u32
                }
            };
            let rs1 = pick(next());
            let rs2 = pick(next());
            items.push((op, rs1, rs2));
        }
        OpStream { items }
    }

    /// Appends one stimulus.
    pub fn push(&mut self, op: CfuOp, rs1: u32, rs2: u32) {
        self.items.push((op, rs1, rs2));
    }

    /// The stimuli in order.
    pub fn items(&self) -> &[(CfuOp, u32, u32)] {
        &self.items
    }

    /// Number of stimuli.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` when the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

impl Default for OpStream {
    fn default() -> Self {
        Self::new()
    }
}

impl Extend<(CfuOp, u32, u32)> for OpStream {
    fn extend<T: IntoIterator<Item = (CfuOp, u32, u32)>>(&mut self, iter: T) {
        self.items.extend(iter);
    }
}

/// Report of an equivalence run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EquivalenceReport {
    /// Ops executed before stopping (all of them on success).
    pub executed: usize,
    /// The first divergence, if any.
    pub divergence: Option<Divergence>,
}

impl EquivalenceReport {
    /// `true` when no divergence occurred.
    pub fn passed(&self) -> bool {
        self.divergence.is_none()
    }
}

impl fmt::Display for EquivalenceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.divergence {
            None => write!(f, "equivalent over {} ops", self.executed),
            Some(d) => write!(f, "diverged after {} ops: {d}", self.executed),
        }
    }
}

/// Feeds `stream` to both CFUs (after resetting them) and compares every
/// result. Both erroring on the same op counts as agreement — the
/// emulation is expected to reject what the hardware rejects.
///
/// Returns the full report; use [`equivalence_check`] for a pass/fail.
pub fn run_equivalence(
    hw: &mut dyn Cfu,
    emu: &mut dyn Cfu,
    stream: &OpStream,
) -> EquivalenceReport {
    hw.reset();
    emu.reset();
    for (index, &(op, rs1, rs2)) in stream.items().iter().enumerate() {
        let h = hw.execute(op, rs1, rs2);
        let e = emu.execute(op, rs1, rs2);
        let agree = match (&h, &e) {
            (Ok(a), Ok(b)) => a.value == b.value,
            (Err(_), Err(_)) => true,
            _ => false,
        };
        if !agree {
            return EquivalenceReport {
                executed: index + 1,
                divergence: Some(Divergence {
                    index,
                    op,
                    operands: (rs1, rs2),
                    hardware: h.map(|r| r.value).map_err(|x| x.to_string()),
                    emulation: e.map(|r| r.value).map_err(|x| x.to_string()),
                }),
            };
        }
    }
    EquivalenceReport { executed: stream.len(), divergence: None }
}

/// Pass/fail wrapper over [`run_equivalence`].
///
/// # Errors
///
/// Returns the first [`Divergence`] when the implementations disagree.
pub fn equivalence_check(
    hw: &mut dyn Cfu,
    emu: &mut dyn Cfu,
    stream: &OpStream,
) -> Result<(), Divergence> {
    match run_equivalence(hw, emu, stream).divergence {
        None => Ok(()),
        Some(d) => Err(d),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emu::SwCfu;
    use crate::templates::{BitOpsCfu, SimdAddCfu};

    #[test]
    fn random_stream_is_reproducible() {
        let ops = [CfuOp::new(0, 0), CfuOp::new(1, 0)];
        let a = OpStream::random(7, 100, &ops);
        let b = OpStream::random(7, 100, &ops);
        assert_eq!(a, b);
        let c = OpStream::random(8, 100, &ops);
        assert_ne!(a, c);
        assert_eq!(a.len(), 100);
    }

    #[test]
    fn random_stream_hits_edge_values() {
        let s = OpStream::random(3, 400, &[CfuOp::new(0, 0)]);
        assert!(s.items().iter().any(|&(_, a, _)| a == 0 || a == u32::MAX));
    }

    #[test]
    fn equivalence_passes_for_identical_logic() {
        let mut hw = BitOpsCfu::new();
        let mut emu = SwCfu::new("emu", |op: CfuOp, a: u32, _| match op.funct7() {
            0 => a.count_ones(),
            1 => a.reverse_bits(),
            _ => a.leading_zeros(),
        });
        let stream =
            OpStream::random(11, 500, &[CfuOp::new(0, 0), CfuOp::new(1, 0), CfuOp::new(2, 0)]);
        let report = run_equivalence(&mut hw, &mut emu, &stream);
        assert!(report.passed(), "{report}");
        assert_eq!(report.executed, 500);
    }

    #[test]
    fn equivalence_localizes_first_divergence() {
        let mut hw = SimdAddCfu::new();
        // Correct on funct7=0, wrong on funct7=1.
        let mut emu = SwCfu::new("emu", |op: CfuOp, a: u32, b: u32| {
            if op.funct7() == 0 {
                let mut out = 0u32;
                for lane in 0..4 {
                    let s = ((a >> (8 * lane)) as u8).wrapping_add((b >> (8 * lane)) as u8);
                    out |= u32::from(s) << (8 * lane);
                }
                out
            } else {
                a.wrapping_add(b) // wrong: not saturating per lane
            }
        });
        let mut stream = OpStream::new();
        stream.push(CfuOp::new(0, 0), 5, 6);
        stream.push(CfuOp::new(1, 0), 0x7F00_0000, 0x7F00_0000); // saturates in hw
        let report = run_equivalence(&mut hw, &mut emu, &stream);
        assert!(!report.passed());
        let d = report.divergence.unwrap();
        assert_eq!(d.index, 1);
        assert_eq!(d.operands, (0x7F00_0000, 0x7F00_0000));
    }

    #[test]
    fn both_erroring_counts_as_agreement() {
        let mut hw = SimdAddCfu::new();
        let mut emu = SimdAddCfu::new();
        let stream = OpStream::directed(vec![(CfuOp::new(99, 0), 1, 2)]);
        assert!(equivalence_check(&mut hw, &mut emu, &stream).is_ok());
    }
}
