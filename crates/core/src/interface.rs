//! The CPU ↔ CFU interface.

use std::fmt;

use crate::resources::Resources;

/// Selector for one of a CFU's operations: the `funct7` and `funct3`
/// fields of the R-format custom instruction, exactly as the paper's
/// `cfu_op(funct7, funct3, a, b)` macro encodes them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CfuOp {
    funct7: u8,
    funct3: u8,
}

impl CfuOp {
    /// Creates an op selector.
    ///
    /// # Panics
    ///
    /// Panics if `funct7 >= 128` or `funct3 >= 8` (they must fit their
    /// instruction fields, a compile-time constraint in the C macro).
    pub fn new(funct7: u8, funct3: u8) -> Self {
        assert!(funct7 < 128, "funct7 must fit 7 bits");
        assert!(funct3 < 8, "funct3 must fit 3 bits");
        CfuOp { funct7, funct3 }
    }

    /// The 7-bit `funct7` field.
    pub fn funct7(self) -> u8 {
        self.funct7
    }

    /// The 3-bit `funct3` field.
    pub fn funct3(self) -> u8 {
        self.funct3
    }

    /// The combined 10-bit selector (`funct7 << 3 | funct3`), handy as a
    /// table index.
    pub fn id(self) -> u16 {
        (u16::from(self.funct7) << 3) | u16::from(self.funct3)
    }

    /// Const-context constructor for op tables.
    ///
    /// # Panics
    ///
    /// Panics (at compile time when used in a `const`) if the fields do
    /// not fit.
    pub const fn from_parts(funct7: u8, funct3: u8) -> Self {
        assert!(funct7 < 128, "funct7 must fit 7 bits");
        assert!(funct3 < 8, "funct3 must fit 3 bits");
        CfuOp { funct7, funct3 }
    }
}

impl fmt::Display for CfuOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cfu_op({}, {})", self.funct7, self.funct3)
    }
}

/// Result of one CFU operation: the value written back to `rd`, and how
/// long the CPU was stalled waiting for it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CfuResponse {
    /// Value returned to the destination register.
    pub value: u32,
    /// Cycles the instruction occupies the pipeline. 1 = combinational /
    /// fully pipelined single-issue; larger values stall the CPU (e.g. the
    /// `Macc4Run1` op runs a whole dot-product loop before responding).
    pub latency: u32,
}

impl CfuResponse {
    /// A single-cycle response.
    pub fn single(value: u32) -> Self {
        CfuResponse { value, latency: 1 }
    }

    /// A multi-cycle response.
    pub fn multi(value: u32, latency: u32) -> Self {
        CfuResponse { value, latency: latency.max(1) }
    }
}

/// Errors a CFU can raise.
///
/// Real hardware cannot "error" — an unimplemented op returns garbage.
/// The simulator is stricter so bugs surface during development, mirroring
/// how the Renode+Verilator flow catches them with waveforms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CfuError {
    /// The CFU does not implement this `funct7`/`funct3` combination.
    UnsupportedOp {
        /// The op that was issued.
        op: CfuOp,
        /// Name of the CFU that rejected it.
        cfu: String,
    },
    /// The op was issued in a state it cannot handle (e.g. reading a
    /// result before any accumulation ran, buffer overflow).
    Protocol {
        /// The op that was issued.
        op: CfuOp,
        /// Description of the violated protocol.
        reason: String,
    },
}

impl fmt::Display for CfuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CfuError::UnsupportedOp { op, cfu } => {
                write!(f, "CFU `{cfu}` does not implement {op}")
            }
            CfuError::Protocol { op, reason } => write!(f, "protocol violation at {op}: {reason}"),
        }
    }
}

impl std::error::Error for CfuError {}

/// A Custom Function Unit: stateful custom logic reachable through
/// R-format custom instructions.
///
/// The boundary is strictly logical, as in the paper: implementations are
/// free to keep arbitrary internal state (scratchpads, parameter tables,
/// accumulators) between ops. [`reset`](Cfu::reset) models the hardware
/// reset line and must return the CFU to its power-on state.
///
/// # Example
///
/// A combinational CFU that sums its two operands — the paper's
/// "hello world" custom instruction:
///
/// ```
/// use cfu_core::{Cfu, CfuError, CfuOp, CfuResponse, Resources};
///
/// struct AdderCfu;
///
/// impl Cfu for AdderCfu {
///     fn name(&self) -> &str {
///         "adder"
///     }
///
///     fn execute(&mut self, op: CfuOp, rs1: u32, rs2: u32) -> Result<CfuResponse, CfuError> {
///         match op.funct3() {
///             0 => Ok(CfuResponse::single(rs1.wrapping_add(rs2))),
///             _ => Err(CfuError::UnsupportedOp { op, cfu: self.name().to_owned() }),
///         }
///     }
///
///     fn reset(&mut self) {}
///
///     fn resources(&self) -> Resources {
///         Resources::luts(40)
///     }
/// }
///
/// let mut cfu = AdderCfu;
/// let r = cfu.execute(CfuOp::new(0, 0), 2, 3).unwrap();
/// assert_eq!((r.value, r.latency), (5, 1));
/// assert!(cfu.execute(CfuOp::new(0, 7), 0, 0).is_err());
/// ```
pub trait Cfu {
    /// Short identifier used in error messages and reports.
    fn name(&self) -> &str;

    /// Executes one custom instruction.
    ///
    /// # Errors
    ///
    /// [`CfuError::UnsupportedOp`] when the op is not implemented;
    /// [`CfuError::Protocol`] when issued in an invalid state.
    fn execute(&mut self, op: CfuOp, rs1: u32, rs2: u32) -> Result<CfuResponse, CfuError>;

    /// Returns the CFU to its power-on state.
    fn reset(&mut self);

    /// FPGA resources this CFU occupies (the yosys report stand-in).
    fn resources(&self) -> Resources;

    /// `true` when the op is implemented. Default: probe nothing and
    /// accept everything (the permissive hardware behaviour); concrete
    /// CFUs override this so the design-space explorer can enumerate ops.
    fn supports(&self, op: CfuOp) -> bool {
        let _ = op;
        true
    }
}

impl Cfu for Box<dyn Cfu> {
    fn name(&self) -> &str {
        self.as_ref().name()
    }

    fn execute(&mut self, op: CfuOp, rs1: u32, rs2: u32) -> Result<CfuResponse, CfuError> {
        self.as_mut().execute(op, rs1, rs2)
    }

    fn reset(&mut self) {
        self.as_mut().reset();
    }

    fn resources(&self) -> Resources {
        self.as_ref().resources()
    }

    fn supports(&self, op: CfuOp) -> bool {
        self.as_ref().supports(op)
    }
}

/// The "no CFU" configuration: rejects every op and consumes nothing.
///
/// Used as the baseline point in the design-space exploration (the green
/// "CPU alone" Pareto curve of Figure 7).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullCfu;

impl Cfu for NullCfu {
    fn name(&self) -> &str {
        "none"
    }

    fn execute(&mut self, op: CfuOp, _rs1: u32, _rs2: u32) -> Result<CfuResponse, CfuError> {
        Err(CfuError::UnsupportedOp { op, cfu: self.name().to_owned() })
    }

    fn reset(&mut self) {}

    fn resources(&self) -> Resources {
        Resources::ZERO
    }

    fn supports(&self, _op: CfuOp) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_id_packs_fields() {
        let op = CfuOp::new(0x7F, 0x7);
        assert_eq!(op.id(), 0x3FF);
        assert_eq!(CfuOp::new(1, 2).id(), (1 << 3) | 2);
    }

    #[test]
    #[should_panic(expected = "funct7")]
    fn funct7_checked() {
        let _ = CfuOp::new(128, 0);
    }

    #[test]
    #[should_panic(expected = "funct3")]
    fn funct3_checked() {
        let _ = CfuOp::new(0, 8);
    }

    #[test]
    fn response_latency_floor_is_one() {
        assert_eq!(CfuResponse::multi(0, 0).latency, 1);
        assert_eq!(CfuResponse::single(7).latency, 1);
    }

    #[test]
    fn null_cfu_rejects_everything() {
        let mut cfu = NullCfu;
        let err = cfu.execute(CfuOp::new(0, 0), 1, 2).unwrap_err();
        assert!(matches!(err, CfuError::UnsupportedOp { .. }));
        assert!(!cfu.supports(CfuOp::new(0, 0)));
        assert_eq!(cfu.resources(), Resources::ZERO);
    }

    #[test]
    fn errors_display_meaningfully() {
        let e = CfuError::UnsupportedOp { op: CfuOp::new(3, 1), cfu: "x".into() };
        assert!(e.to_string().contains("cfu_op(3, 1)"));
    }
}
