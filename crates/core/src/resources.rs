//! FPGA resource accounting — the stand-in for yosys utilization reports.
//!
//! CFU Playground feeds yosys-computed logic-cell counts to Vizier during
//! design-space exploration, and the case studies track resource usage at
//! every ladder step (Figures 4 and 6). Here every CPU feature and CFU
//! block carries an explicit [`Resources`] estimate. The constants are
//! calibrated to public VexRiscv/iCE40 synthesis results (see the timing
//! constants table in DESIGN.md); what matters for reproduction is the
//! *relative* cost of features, which drives both the Fomu fit pressure
//! and the Pareto fronts.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Sub};

/// FPGA resources used by a block of logic.
///
/// `luts` counts 4-input lookup tables (iCE40 logic cells ≈ LUT4 + FF
/// pairs; on Xilinx 7-series one slice LUT6 can absorb ~1.6 LUT4s, a
/// difference boards account for via their budgets).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct Resources {
    /// 4-input LUT equivalents.
    pub luts: u32,
    /// Flip-flops.
    pub ffs: u32,
    /// Block RAMs (in 0.5 KiB units, the iCE40 granularity).
    pub brams: u32,
    /// DSP / hardware-multiplier tiles (16×16 on iCE40UP).
    pub dsps: u32,
}

impl Resources {
    /// No resources.
    pub const ZERO: Resources = Resources { luts: 0, ffs: 0, brams: 0, dsps: 0 };

    /// Creates a resource bundle.
    pub fn new(luts: u32, ffs: u32, brams: u32, dsps: u32) -> Self {
        Resources { luts, ffs, brams, dsps }
    }

    /// Only LUTs (the commonest case for small control logic).
    pub fn luts(luts: u32) -> Self {
        Resources { luts, ..Resources::ZERO }
    }

    /// `true` if every component of `self` fits within `budget`.
    pub fn fits_within(&self, budget: &Resources) -> bool {
        self.luts <= budget.luts
            && self.ffs <= budget.ffs
            && self.brams <= budget.brams
            && self.dsps <= budget.dsps
    }

    /// Component-wise saturating subtraction — the headroom left in a
    /// budget after placing `self`.
    pub fn saturating_sub(&self, other: &Resources) -> Resources {
        Resources {
            luts: self.luts.saturating_sub(other.luts),
            ffs: self.ffs.saturating_sub(other.ffs),
            brams: self.brams.saturating_sub(other.brams),
            dsps: self.dsps.saturating_sub(other.dsps),
        }
    }

    /// A single scalar used as the resource axis in Pareto plots:
    /// logic cells ≈ max(luts, ffs) plus heavily-weighted DSP/BRAM so
    /// hard-block exhaustion (Fomu's 8 DSPs) shows up in the metric.
    pub fn logic_cells(&self) -> u32 {
        self.luts.max(self.ffs)
    }
}

impl Add for Resources {
    type Output = Resources;

    fn add(self, rhs: Resources) -> Resources {
        Resources {
            luts: self.luts + rhs.luts,
            ffs: self.ffs + rhs.ffs,
            brams: self.brams + rhs.brams,
            dsps: self.dsps + rhs.dsps,
        }
    }
}

impl AddAssign for Resources {
    fn add_assign(&mut self, rhs: Resources) {
        *self = *self + rhs;
    }
}

impl Sub for Resources {
    type Output = Resources;

    fn sub(self, rhs: Resources) -> Resources {
        Resources {
            luts: self.luts - rhs.luts,
            ffs: self.ffs - rhs.ffs,
            brams: self.brams - rhs.brams,
            dsps: self.dsps - rhs.dsps,
        }
    }
}

impl Mul<u32> for Resources {
    type Output = Resources;

    fn mul(self, k: u32) -> Resources {
        Resources {
            luts: self.luts * k,
            ffs: self.ffs * k,
            brams: self.brams * k,
            dsps: self.dsps * k,
        }
    }
}

impl Sum for Resources {
    fn sum<I: Iterator<Item = Resources>>(iter: I) -> Resources {
        iter.fold(Resources::ZERO, Add::add)
    }
}

impl fmt::Display for Resources {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} LUTs, {} FFs, {} BRAMs, {} DSPs", self.luts, self.ffs, self.brams, self.dsps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Resources::new(100, 50, 2, 1);
        let b = Resources::new(10, 5, 1, 0);
        assert_eq!(a + b, Resources::new(110, 55, 3, 1));
        assert_eq!(a - b, Resources::new(90, 45, 1, 1));
        assert_eq!(b * 3, Resources::new(30, 15, 3, 0));
        let total: Resources = [a, b, b].into_iter().sum();
        assert_eq!(total, Resources::new(120, 60, 4, 1));
    }

    #[test]
    fn fits_within_checks_every_axis() {
        let budget = Resources::new(5280, 5280, 30, 8); // Fomu
        assert!(Resources::new(5280, 100, 30, 8).fits_within(&budget));
        assert!(!Resources::new(5281, 0, 0, 0).fits_within(&budget));
        assert!(!Resources::new(0, 0, 0, 9).fits_within(&budget)); // out of DSPs
    }

    #[test]
    fn headroom() {
        let budget = Resources::new(100, 100, 4, 8);
        let used = Resources::new(60, 120, 1, 2);
        let left = budget.saturating_sub(&used);
        assert_eq!(left, Resources::new(40, 0, 3, 6));
    }

    #[test]
    fn display_nonempty() {
        assert!(!Resources::ZERO.to_string().is_empty());
    }
}
