//! TensorFlow Lite Micro's fixed-point requantization arithmetic.
//!
//! Quantized inference multiplies int8 data into int32 accumulators, then
//! scales the accumulator back to int8 with a *quantized multiplier*: a
//! Q31 fixed-point significand plus a power-of-two shift. TFLM (via
//! gemmlowp) defines this arithmetic bit-exactly, and both the reference
//! kernels **and** the CFU post-processing hardware must implement the
//! same bits — the paper's `Post Proc` ladder steps move exactly this
//! computation (saturating multiplication, rounding division, output
//! clamping) into the CFU. Keeping the one true implementation here lets
//! the hardware models, their software emulations, and the reference
//! kernels all share it.

/// Saturating, rounding, doubling high multiplication (gemmlowp
/// `SaturatingRoundingDoublingHighMul`).
///
/// Computes `(a * b * 2 + (1 << 30)) >> 31` with the single overflow case
/// `a == b == i32::MIN` saturating to `i32::MAX`.
///
/// # Example
///
/// ```
/// use cfu_core::arith::saturating_rounding_doubling_high_mul as srdhm;
/// assert_eq!(srdhm(i32::MIN, i32::MIN), i32::MAX); // the saturation case
/// assert_eq!(srdhm(1 << 30, 1 << 30), 1 << 29);
/// ```
pub fn saturating_rounding_doubling_high_mul(a: i32, b: i32) -> i32 {
    if a == i32::MIN && b == i32::MIN {
        return i32::MAX;
    }
    let ab = i64::from(a) * i64::from(b);
    let nudge: i64 = if ab >= 0 { 1 << 30 } else { 1 - (1 << 30) };
    // gemmlowp divides (truncation toward zero), which differs from an
    // arithmetic shift for negative products — keep it bit-exact.
    ((ab + nudge) / (1i64 << 31)) as i32
}

/// Rounding arithmetic right shift (gemmlowp `RoundingDivideByPOT`):
/// divides by `2^exponent`, rounding half away from zero.
///
/// # Panics
///
/// Panics if `exponent` is not in `0..=31`.
///
/// # Example
///
/// ```
/// use cfu_core::arith::rounding_divide_by_pot;
/// assert_eq!(rounding_divide_by_pot(5, 1), 3);   // 2.5 rounds up
/// assert_eq!(rounding_divide_by_pot(-5, 1), -3); // -2.5 rounds away
/// assert_eq!(rounding_divide_by_pot(4, 1), 2);
/// ```
pub fn rounding_divide_by_pot(x: i32, exponent: i32) -> i32 {
    assert!((0..=31).contains(&exponent), "exponent {exponent} out of range");
    let mask = (1i64 << exponent) - 1;
    let remainder = i64::from(x) & mask;
    let threshold = (mask >> 1) + i64::from(x < 0);
    let mut result = x >> exponent;
    if remainder > threshold {
        result = result.wrapping_add(1);
    }
    result
}

/// The full TFLM requantization step
/// (`MultiplyByQuantizedMultiplier`): scales an int32 accumulator by
/// `multiplier * 2^shift` where `multiplier` is Q31 in `[2^30, 2^31)` and
/// `shift` may be positive (left) or negative (right).
///
/// # Example
///
/// ```
/// use cfu_core::arith::multiply_by_quantized_multiplier;
/// // Scale by exactly 0.5: multiplier = 2^30 (0.5 in Q31 doubled), shift = 0.
/// assert_eq!(multiply_by_quantized_multiplier(100, 1 << 30, 0), 50);
/// ```
pub fn multiply_by_quantized_multiplier(x: i32, quantized_multiplier: i32, shift: i32) -> i32 {
    // Hardware shift registers are a handful of bits wide; out-of-range
    // shifts are clamped the way the RTL's field width would truncate them.
    let shift = shift.clamp(-31, 30);
    let left_shift = shift.max(0);
    let right_shift = (-shift).max(0);
    let shifted = x.wrapping_shl(left_shift as u32);
    rounding_divide_by_pot(
        saturating_rounding_doubling_high_mul(shifted, quantized_multiplier),
        right_shift,
    )
}

/// Converts a real-valued scale factor into TFLM's `(multiplier, shift)`
/// pair such that `value ≈ multiplier / 2^31 * 2^shift`.
///
/// Mirrors TFLM's `QuantizeMultiplier`: the returned multiplier is in
/// `[2^30, 2^31)` (or 0 when `scale == 0`).
///
/// # Panics
///
/// Panics on negative, NaN or infinite scales, which are invalid
/// quantization parameters.
///
/// # Example
///
/// ```
/// use cfu_core::arith::{quantize_multiplier, multiply_by_quantized_multiplier};
/// let (m, s) = quantize_multiplier(0.0125);
/// let scaled = multiply_by_quantized_multiplier(10_000, m, s);
/// assert_eq!(scaled, 125);
/// ```
pub fn quantize_multiplier(scale: f64) -> (i32, i32) {
    assert!(scale.is_finite() && scale >= 0.0, "invalid quantization scale {scale}");
    if scale == 0.0 {
        return (0, 0);
    }
    let (mut significand, mut shift) = frexp(scale);
    // significand in [0.5, 1); convert to Q31.
    let mut q = (significand * f64::from(1u32 << 31)).round() as i64;
    debug_assert!(q <= 1i64 << 31);
    if q == 1i64 << 31 {
        q /= 2;
        shift += 1;
    }
    if shift < -31 {
        // Scale so small everything rounds to zero.
        return (0, 0);
    }
    let _ = &mut significand;
    (q as i32, shift)
}

/// `frexp` for positive finite doubles: returns `(frac, exp)` with
/// `frac ∈ [0.5, 1)` and `value = frac * 2^exp`.
fn frexp(value: f64) -> (f64, i32) {
    debug_assert!(value > 0.0 && value.is_finite());
    let bits = value.to_bits();
    let raw_exp = ((bits >> 52) & 0x7FF) as i32;
    if raw_exp == 0 {
        // Subnormal: normalize by scaling up 2^64.
        let (f, e) = frexp(value * f64::from(2.0f32).powi(64));
        return (f, e - 64);
    }
    let exp = raw_exp - 1022;
    let frac = f64::from_bits((bits & !(0x7FFu64 << 52)) | (1022u64 << 52));
    (frac, exp)
}

/// Clamps `x` into `[min, max]` — the activation clamp at the end of the
/// post-processing pipeline.
///
/// Implemented as the two comparators the RTL would use, so a software-
/// programmed inverted range (`min > max`) degenerates gracefully instead
/// of panicking: the `min` comparator wins, exactly like the hardware.
pub fn clamp_activation(x: i32, min: i32, max: i32) -> i32 {
    if x < min {
        min
    } else if x > max {
        max
    } else {
        x
    }
}

/// Packs four i8 lanes into a little-endian u32 word, the layout both
/// CFUs use for their SIMD operands.
pub fn pack_i8x4(lanes: [i8; 4]) -> u32 {
    u32::from_le_bytes(lanes.map(|v| v as u8))
}

/// Unpacks a u32 word into four i8 lanes (inverse of [`pack_i8x4`]).
pub fn unpack_i8x4(word: u32) -> [i8; 4] {
    word.to_le_bytes().map(|b| b as i8)
}

/// Signed 4-lane dot product: `Σ lane_a[i] * lane_b[i]`, i.e. the MAC4
/// datapath of both CFU1 and CFU2 with no input offset.
pub fn dot4(a: u32, b: u32) -> i32 {
    unpack_i8x4(a).into_iter().zip(unpack_i8x4(b)).map(|(x, y)| i32::from(x) * i32::from(y)).sum()
}

/// 4-lane dot product with an input offset added to each activation lane
/// (TFLM convolutions add `input_offset` before multiplying):
/// `Σ (a[i] + input_offset) * f[i]`.
pub fn dot4_offset(activations: u32, filters: u32, input_offset: i32) -> i32 {
    // Wrapping like the 32-bit adder tree would: `input_offset` is a
    // software-visible register and can legally hold any value.
    unpack_i8x4(activations).into_iter().zip(unpack_i8x4(filters)).fold(0i32, |acc, (x, w)| {
        acc.wrapping_add(i32::from(x).wrapping_add(input_offset).wrapping_mul(i32::from(w)))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn srdhm_matches_reference_cases() {
        // Reference values computed with gemmlowp semantics.
        assert_eq!(saturating_rounding_doubling_high_mul(0, 12345), 0);
        assert_eq!(saturating_rounding_doubling_high_mul(1 << 30, 1 << 30), 1 << 29);
        assert_eq!(saturating_rounding_doubling_high_mul(i32::MAX, i32::MAX), 2147483646);
        assert_eq!(saturating_rounding_doubling_high_mul(i32::MIN, i32::MIN), i32::MAX);
        assert_eq!(saturating_rounding_doubling_high_mul(i32::MIN, i32::MAX), -2147483647);
    }

    #[test]
    fn rdbpot_rounds_half_away_from_zero() {
        assert_eq!(rounding_divide_by_pot(3, 1), 2); // 1.5 → 2
        assert_eq!(rounding_divide_by_pot(-3, 1), -2); // -1.5 → -2 (away)
        assert_eq!(rounding_divide_by_pot(7, 2), 2); // 1.75 → 2
        assert_eq!(rounding_divide_by_pot(-7, 2), -2);
        assert_eq!(rounding_divide_by_pot(100, 0), 100);
    }

    #[test]
    fn quantize_multiplier_roundtrips_scales() {
        for scale in [0.5, 0.25, 0.0001, 0.99999, 1.0, 1.7, 123.456] {
            let (m, s) = quantize_multiplier(scale);
            assert!(m == 0 || (1 << 30..=i32::MAX).contains(&m), "m={m} for scale={scale}");
            let recovered = f64::from(m) / f64::from(2u32.pow(31)) * 2f64.powi(s);
            let rel = (recovered - scale).abs() / scale;
            assert!(rel < 1e-6, "scale {scale}: recovered {recovered}");
        }
    }

    #[test]
    fn quantize_multiplier_zero_and_tiny() {
        assert_eq!(quantize_multiplier(0.0), (0, 0));
        let (m, _) = quantize_multiplier(1e-40);
        assert_eq!(m, 0);
    }

    #[test]
    fn multiply_matches_f64_for_easy_scales() {
        let (m, s) = quantize_multiplier(0.125);
        for x in [-1000, -1, 0, 1, 7, 1000, 123_456] {
            assert_eq!(
                multiply_by_quantized_multiplier(x, m, s),
                ((x as f64) * 0.125).round() as i32
            );
        }
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let lanes = [-128i8, -1, 0, 127];
        assert_eq!(unpack_i8x4(pack_i8x4(lanes)), lanes);
    }

    #[test]
    fn dot4_reference() {
        let a = pack_i8x4([1, 2, 3, 4]);
        let b = pack_i8x4([5, -6, 7, -8]);
        assert_eq!(dot4(a, b), 5 - 12 + 21 - 32);
        // Extremes don't overflow i32 (4 * 128 * 128 is small).
        let lo = pack_i8x4([-128; 4]);
        assert_eq!(dot4(lo, lo), 4 * 128 * 128);
    }

    #[test]
    fn dot4_offset_matches_manual() {
        let a = pack_i8x4([-128, 0, 1, 127]);
        let f = pack_i8x4([3, -3, 5, -5]);
        let off = 128;
        let expected = (-128 + 128) * 3 + (0 + 128) * (-3) + (1 + 128) * 5 + (127 + 128) * (-5);
        assert_eq!(dot4_offset(a, f, off), expected);
    }

    #[test]
    fn frexp_agrees_with_libm_identity() {
        for v in [0.5, 1.0, 1.5, 3.0, 0.00007, 9e18] {
            let (f, e) = frexp(v);
            assert!((0.5..1.0).contains(&f), "frac {f} for {v}");
            assert!((f * 2f64.powi(e) - v).abs() < v * 1e-15);
        }
    }
}
