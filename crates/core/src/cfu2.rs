//! CFU2: the Keyword-Spotting SIMD MAC + post-processing CFU (§III-B).
//!
//! Fomu's iCE40UP5k leaves almost no headroom — the KWS CFU is therefore
//! deliberately small: a 4-way multiply-accumulate using the four DSP
//! tiles left after the CPU took the other four for single-cycle
//! multiplication, a single-lane mode reused by depthwise convolution
//! ("there were no remaining resources to extend the CFU" with separate
//! depthwise gateware), and a register-based accumulator post-processing
//! unit built from leftover logic cells (the `Post Proc` step, "14×
//! faster" than the software requantization).
//!
//! Unlike [`Cfu1`](crate::cfu1::Cfu1) there are no buffers or parameter
//! tables: the CPU streams operands every cycle and re-programs the
//! post-processing registers per output channel.
//!
//! Op map (all on `funct3 = 0`):
//!
//! | funct7 | op | meaning |
//! |-------:|----|---------|
//! | 0 | `RESET`             | clear accumulator and registers |
//! | 1 | `SET_INPUT_OFFSET`  | activation offset for MAC lanes |
//! | 2 | `MAC4`              | acc += Σ (in\[i\]+off) · filt\[i\], 4 lanes |
//! | 3 | `MAC1`              | acc += (rs1+off) · rs2, one lane (depthwise) |
//! | 4 | `TAKE_ACC`          | read accumulator and clear |
//! | 5 | `SET_BIAS`          | post-processing bias register |
//! | 6 | `SET_MULTIPLIER`    | post-processing Q31 multiplier register |
//! | 7 | `SET_SHIFT`         | post-processing shift register |
//! | 8 | `SET_OUTPUT_OFFSET` | output zero point |
//! | 9 | `SET_ACTIVATION`    | clamp range (rs1 = min, rs2 = max) |
//! | 10 | `POSTPROC`         | requantize + clamp rs1 |
//! | 11 | `MAC4_TAKE_POSTPROC` | acc += MAC4, then return postprocessed acc and clear |

use crate::arith;
use crate::blocks::{ChannelParams, MacArray, PostProcessor};
use crate::interface::{Cfu, CfuError, CfuOp, CfuResponse};
use crate::resources::Resources;

const OP_RESET: u8 = 0;
const OP_SET_INPUT_OFFSET: u8 = 1;
const OP_MAC4: u8 = 2;
const OP_MAC1: u8 = 3;
const OP_TAKE_ACC: u8 = 4;
const OP_SET_BIAS: u8 = 5;
const OP_SET_MULTIPLIER: u8 = 6;
const OP_SET_SHIFT: u8 = 7;
const OP_SET_OUTPUT_OFFSET: u8 = 8;
const OP_SET_ACTIVATION: u8 = 9;
const OP_POSTPROC: u8 = 10;
const OP_MAC4_TAKE_POSTPROC: u8 = 11;

/// Typed op constructors for the KWS CFU.
pub mod ops {
    use super::*;

    /// Clear accumulator and all registers.
    pub const RESET: CfuOp = CfuOp::from_parts(OP_RESET, 0);
    /// Set the activation offset added to each input lane.
    pub const SET_INPUT_OFFSET: CfuOp = CfuOp::from_parts(OP_SET_INPUT_OFFSET, 0);
    /// 4-lane multiply accumulate of packed rs1 (inputs) and rs2 (filters).
    pub const MAC4: CfuOp = CfuOp::from_parts(OP_MAC4, 0);
    /// Single-lane multiply accumulate (depthwise fallback).
    pub const MAC1: CfuOp = CfuOp::from_parts(OP_MAC1, 0);
    /// Read and clear the accumulator.
    pub const TAKE_ACC: CfuOp = CfuOp::from_parts(OP_TAKE_ACC, 0);
    /// Set the post-processing bias register.
    pub const SET_BIAS: CfuOp = CfuOp::from_parts(OP_SET_BIAS, 0);
    /// Set the post-processing Q31 multiplier register.
    pub const SET_MULTIPLIER: CfuOp = CfuOp::from_parts(OP_SET_MULTIPLIER, 0);
    /// Set the post-processing shift register.
    pub const SET_SHIFT: CfuOp = CfuOp::from_parts(OP_SET_SHIFT, 0);
    /// Set the output zero point.
    pub const SET_OUTPUT_OFFSET: CfuOp = CfuOp::from_parts(OP_SET_OUTPUT_OFFSET, 0);
    /// Set the activation clamp range (rs1 = min, rs2 = max).
    pub const SET_ACTIVATION: CfuOp = CfuOp::from_parts(OP_SET_ACTIVATION, 0);
    /// Requantize and clamp rs1 with the current registers.
    pub const POSTPROC: CfuOp = CfuOp::from_parts(OP_POSTPROC, 0);
    /// Fused final MAC4 + postprocess + accumulator clear.
    pub const MAC4_TAKE_POSTPROC: CfuOp = CfuOp::from_parts(OP_MAC4_TAKE_POSTPROC, 0);
}

/// The Keyword-Spotting CFU: 4-way SIMD MAC plus register-based
/// accumulator post-processing.
#[derive(Debug, Clone)]
pub struct Cfu2 {
    mac: MacArray,
    post: PostProcessor,
    params: ChannelParams,
    /// Whether the post-processing extension is built (it is optional:
    /// the `MAC Conv` ladder step predates it).
    with_postproc: bool,
}

impl Default for Cfu2 {
    fn default() -> Self {
        Self::new()
    }
}

impl Cfu2 {
    /// The full design: SIMD MAC and post-processing.
    pub fn new() -> Self {
        Cfu2 {
            mac: MacArray::new(4),
            post: PostProcessor::new(),
            params: ChannelParams::default(),
            with_postproc: true,
        }
    }

    /// The intermediate `MAC Conv` design without the post-processing
    /// extension (post-processing ops report `UnsupportedOp`).
    pub fn mac_only() -> Self {
        Cfu2 { with_postproc: false, ..Cfu2::new() }
    }

    /// `true` when the post-processing extension is present.
    pub fn has_postproc(&self) -> bool {
        self.with_postproc
    }

    fn postproc(&self, acc: i32) -> i32 {
        self.post.process_with(acc, self.params)
    }

    fn require_postproc(&self, op: CfuOp) -> Result<(), CfuError> {
        if self.with_postproc {
            Ok(())
        } else {
            Err(CfuError::UnsupportedOp { op, cfu: "cfu2[mac-only]".to_owned() })
        }
    }
}

impl Cfu for Cfu2 {
    fn name(&self) -> &str {
        "cfu2-kws"
    }

    fn execute(&mut self, op: CfuOp, rs1: u32, rs2: u32) -> Result<CfuResponse, CfuError> {
        if op.funct3() != 0 {
            return Err(CfuError::UnsupportedOp { op, cfu: self.name().to_owned() });
        }
        match op.funct7() {
            OP_RESET => {
                self.reset();
                Ok(CfuResponse::single(0))
            }
            OP_SET_INPUT_OFFSET => {
                self.mac.set_input_offset(rs1 as i32);
                Ok(CfuResponse::single(0))
            }
            OP_MAC4 => Ok(CfuResponse::single(self.mac.mac(rs1, rs2) as u32)),
            OP_MAC1 => Ok(CfuResponse::single(self.mac.mac_single(rs1 as i32, rs2 as i32) as u32)),
            OP_TAKE_ACC => Ok(CfuResponse::single(self.mac.take() as u32)),
            OP_SET_BIAS => {
                self.require_postproc(op)?;
                self.params.bias = rs1 as i32;
                Ok(CfuResponse::single(0))
            }
            OP_SET_MULTIPLIER => {
                self.require_postproc(op)?;
                self.params.multiplier = rs1 as i32;
                Ok(CfuResponse::single(0))
            }
            OP_SET_SHIFT => {
                self.require_postproc(op)?;
                self.params.shift = rs1 as i32;
                Ok(CfuResponse::single(0))
            }
            OP_SET_OUTPUT_OFFSET => {
                self.require_postproc(op)?;
                self.post.set_output_offset(rs1 as i32);
                Ok(CfuResponse::single(0))
            }
            OP_SET_ACTIVATION => {
                self.require_postproc(op)?;
                self.post.set_activation_range(rs1 as i32, rs2 as i32);
                Ok(CfuResponse::single(0))
            }
            OP_POSTPROC => {
                self.require_postproc(op)?;
                Ok(CfuResponse::single(self.postproc(rs1 as i32) as u32))
            }
            OP_MAC4_TAKE_POSTPROC => {
                self.require_postproc(op)?;
                self.mac.mac(rs1, rs2);
                let acc = self.mac.take();
                Ok(CfuResponse::single(self.postproc(acc) as u32))
            }
            _ => Err(CfuError::UnsupportedOp { op, cfu: self.name().to_owned() }),
        }
    }

    fn reset(&mut self) {
        self.mac.reset();
        self.post.reset();
        self.params = ChannelParams::default();
    }

    fn resources(&self) -> Resources {
        // Interface shim + 4 DSP MAC; postproc is register-based (no BRAM):
        // requantizer datapath only.
        let mut r = Resources { luts: 90, ffs: 70, brams: 0, dsps: 0 };
        r += self.mac.resources();
        if self.with_postproc {
            r += Resources { luts: 340, ffs: 128, brams: 0, dsps: 0 };
        }
        r
    }

    fn supports(&self, op: CfuOp) -> bool {
        if op.funct3() != 0 {
            return false;
        }
        match op.funct7() {
            OP_RESET..=OP_TAKE_ACC => true,
            OP_SET_BIAS..=OP_MAC4_TAKE_POSTPROC => self.with_postproc,
            _ => false,
        }
    }
}

/// Builds the reference software emulation of CFU2, for the
/// [`emu`](crate::emu) comparison flow. Functionally identical by
/// construction of shared arithmetic, but maintained as independent code
/// so divergence tests mean something.
pub fn software_emulation() -> impl Cfu {
    #[derive(Debug, Default)]
    struct State {
        acc: i64,
        input_offset: i32,
        bias: i32,
        multiplier: i32,
        shift: i32,
        output_offset: i32,
        act_min: i32,
        act_max: i32,
    }
    let mut st = State { act_min: -128, act_max: 127, ..State::default() };
    crate::emu::SwCfuFallible::new("cfu2-emu", move |op: CfuOp, rs1: u32, rs2: u32| {
        let post = |st: &State, acc: i32| -> i32 {
            let scaled = arith::multiply_by_quantized_multiplier(
                acc.wrapping_add(st.bias),
                st.multiplier,
                st.shift,
            );
            arith::clamp_activation(scaled.wrapping_add(st.output_offset), st.act_min, st.act_max)
        };
        Ok(match op.funct7() {
            OP_RESET => {
                st = State { act_min: -128, act_max: 127, ..State::default() };
                0
            }
            OP_SET_INPUT_OFFSET => {
                st.input_offset = rs1 as i32;
                0
            }
            OP_MAC4 => {
                st.acc =
                    st.acc.wrapping_add(i64::from(arith::dot4_offset(rs1, rs2, st.input_offset)));
                st.acc as u32
            }
            OP_MAC1 => {
                st.acc = st.acc.wrapping_add(i64::from(
                    (rs1 as i32).wrapping_add(st.input_offset).wrapping_mul(rs2 as i32),
                ));
                st.acc as u32
            }
            OP_TAKE_ACC => {
                let v = st.acc as u32;
                st.acc = 0;
                v
            }
            OP_SET_BIAS => {
                st.bias = rs1 as i32;
                0
            }
            OP_SET_MULTIPLIER => {
                st.multiplier = rs1 as i32;
                0
            }
            OP_SET_SHIFT => {
                st.shift = rs1 as i32;
                0
            }
            OP_SET_OUTPUT_OFFSET => {
                st.output_offset = rs1 as i32;
                0
            }
            OP_SET_ACTIVATION => {
                st.act_min = rs1 as i32;
                st.act_max = rs2 as i32;
                0
            }
            OP_POSTPROC => post(&st, rs1 as i32) as u32,
            OP_MAC4_TAKE_POSTPROC => {
                st.acc =
                    st.acc.wrapping_add(i64::from(arith::dot4_offset(rs1, rs2, st.input_offset)));
                let acc = st.acc as i32;
                st.acc = 0;
                post(&st, acc) as u32
            }
            other => {
                return Err(CfuError::UnsupportedOp {
                    op: CfuOp::from_parts(other, op.funct3()),
                    cfu: "cfu2-emu".to_owned(),
                })
            }
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arith::{pack_i8x4, quantize_multiplier};
    use crate::verify::{equivalence_check, OpStream};

    fn exec(cfu: &mut Cfu2, op: CfuOp, rs1: u32, rs2: u32) -> u32 {
        cfu.execute(op, rs1, rs2).unwrap().value
    }

    #[test]
    fn mac4_and_take() {
        let mut cfu = Cfu2::new();
        exec(&mut cfu, ops::SET_INPUT_OFFSET, 128, 0);
        let a = pack_i8x4([-128, -1, 0, 1]);
        let f = pack_i8x4([2, 2, 2, 2]);
        let r = exec(&mut cfu, ops::MAC4, a, f) as i32;
        assert_eq!(r, arith::dot4_offset(a, f, 128));
        assert_eq!(exec(&mut cfu, ops::TAKE_ACC, 0, 0) as i32, r);
        assert_eq!(exec(&mut cfu, ops::TAKE_ACC, 0, 0), 0);
    }

    #[test]
    fn single_lane_for_depthwise() {
        let mut cfu = Cfu2::new();
        exec(&mut cfu, ops::SET_INPUT_OFFSET, 10, 0);
        let r = exec(&mut cfu, ops::MAC1, 5, (-3i32) as u32) as i32;
        assert_eq!(r, (5 + 10) * -3);
    }

    #[test]
    fn postproc_matches_reference_arith() {
        let mut cfu = Cfu2::new();
        let (m, s) = quantize_multiplier(0.25);
        exec(&mut cfu, ops::SET_BIAS, 20, 0);
        exec(&mut cfu, ops::SET_MULTIPLIER, m as u32, 0);
        exec(&mut cfu, ops::SET_SHIFT, s as u32, 0);
        exec(&mut cfu, ops::SET_OUTPUT_OFFSET, (-5i32) as u32, 0);
        exec(&mut cfu, ops::SET_ACTIVATION, (-128i32) as u32, 127);
        // (100 + 20) * 0.25 - 5 = 25
        assert_eq!(exec(&mut cfu, ops::POSTPROC, 100, 0) as i32, 25);
    }

    #[test]
    fn fused_mac_postproc() {
        let mut cfu = Cfu2::new();
        let (m, s) = quantize_multiplier(1.0);
        exec(&mut cfu, ops::SET_MULTIPLIER, m as u32, 0);
        exec(&mut cfu, ops::SET_SHIFT, s as u32, 0);
        exec(&mut cfu, ops::SET_ACTIVATION, (-128i32) as u32, 127);
        let a = pack_i8x4([1, 2, 3, 4]);
        let f = pack_i8x4([1, 1, 1, 1]);
        let v = exec(&mut cfu, ops::MAC4_TAKE_POSTPROC, a, f) as i32;
        assert_eq!(v, 10);
        // Accumulator was cleared by the fused op.
        assert_eq!(exec(&mut cfu, ops::TAKE_ACC, 0, 0), 0);
    }

    #[test]
    fn mac_only_variant_rejects_postproc() {
        let mut cfu = Cfu2::mac_only();
        assert!(cfu.execute(ops::POSTPROC, 0, 0).is_err());
        assert!(cfu.execute(ops::MAC4, 0, 0).is_ok());
        assert!(!cfu.supports(ops::SET_BIAS));
        assert!(cfu.supports(ops::MAC1));
    }

    #[test]
    fn resources_fit_fomu_budget() {
        // Fomu: 5280 LCs, 8 DSPs total; the CPU's fast multiplier takes 4.
        let r = Cfu2::new().resources();
        assert_eq!(r.dsps, 4);
        assert!(r.luts < 800, "CFU2 must stay small: {r}");
        assert_eq!(r.brams, 0, "no BRAM headroom on Fomu");
        let mac_only = Cfu2::mac_only().resources();
        assert!(mac_only.luts < r.luts);
    }

    #[test]
    fn hardware_model_matches_software_emulation() {
        // The paper's §II-E random CFU-level test, end to end.
        let mut hw = Cfu2::new();
        let mut emu = software_emulation();
        let all_ops: Vec<CfuOp> = (0u8..=11).map(|f| CfuOp::from_parts(f, 0)).collect();
        let stream = OpStream::random(2024, 3000, &all_ops);
        // Multiplier garbage can differ? No: both use the same arithmetic
        // on whatever registers hold. They must agree bit-for-bit.
        equivalence_check(&mut hw, &mut emu, &stream).unwrap();
    }

    #[test]
    fn reset_clears_state() {
        let mut cfu = Cfu2::new();
        exec(&mut cfu, ops::MAC1, 100, 100);
        cfu.reset();
        assert_eq!(exec(&mut cfu, ops::TAKE_ACC, 0, 0), 0);
    }
}
