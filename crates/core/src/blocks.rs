//! Reusable CFU datapath building blocks.
//!
//! The paper grows its accelerators incrementally: a post-processing unit,
//! then scratchpad buffers for filters and inputs, then a SIMD
//! multiply-accumulate array, then fused loops. Each of those pieces is a
//! block here, with functional behaviour and a [`Resources`] estimate, so
//! new CFUs can be assembled the way the case studies assemble theirs.

use crate::arith;
use crate::resources::Resources;

/// A small word-addressed buffer inside the CFU ("flexible, configurable
/// storage allows the data to be stored and reused locally, reducing
/// unnecessary data movement").
///
/// Backed by FPGA block RAM: capacity is rounded up to 512-byte BRAM
/// units for the resource estimate.
#[derive(Debug, Clone)]
pub struct Scratchpad {
    words: Vec<u32>,
    write_ptr: usize,
    read_ptr: usize,
}

impl Scratchpad {
    /// Creates a zeroed scratchpad holding `capacity_words` 32-bit words.
    pub fn new(capacity_words: usize) -> Self {
        Scratchpad { words: vec![0; capacity_words], write_ptr: 0, read_ptr: 0 }
    }

    /// Capacity in words.
    pub fn capacity(&self) -> usize {
        self.words.len()
    }

    /// Appends a word at the write pointer, wrapping at capacity
    /// (hardware address counters wrap; protocol checks live in the CFUs).
    pub fn push(&mut self, word: u32) {
        let cap = self.words.len();
        self.words[self.write_ptr % cap] = word;
        self.write_ptr = (self.write_ptr + 1) % cap;
    }

    /// Reads the word at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= capacity` — a protocol error the simulator
    /// surfaces instead of returning X's like real hardware would.
    pub fn read(&self, index: usize) -> u32 {
        self.words[index]
    }

    /// Reads the word at the read pointer and advances it (wrapping).
    pub fn pop(&mut self) -> u32 {
        let cap = self.words.len();
        let w = self.words[self.read_ptr % cap];
        self.read_ptr = (self.read_ptr + 1) % cap;
        w
    }

    /// Number of words written since the last reset (saturates at
    /// capacity).
    pub fn written(&self) -> usize {
        self.write_ptr
    }

    /// Resets both pointers and zeroes contents.
    pub fn reset(&mut self) {
        self.words.fill(0);
        self.write_ptr = 0;
        self.read_ptr = 0;
    }

    /// Rewinds the pointers without clearing data (reuse the same filter
    /// buffer across output pixels).
    pub fn rewind(&mut self) {
        self.write_ptr = 0;
        self.read_ptr = 0;
    }

    /// Block-RAM cost: one 512-byte iCE40 BRAM per 128 words, plus a few
    /// LUTs of addressing logic.
    pub fn resources(&self) -> Resources {
        let brams = (self.words.len() * 4).div_ceil(512) as u32;
        Resources { luts: 30, ffs: 24, brams, dsps: 0 }
    }
}

/// An N-lane signed 8-bit multiply-accumulate array with a 32-bit
/// accumulator — the `MAC4` / `SIMD MAC` datapath.
///
/// Each lane computes `(activation + input_offset) * filter`; lanes sum
/// into the accumulator. With `lanes = 4` and packed operands this is one
/// result per cycle, the paper's headline CFU datapath on both boards.
#[derive(Debug, Clone)]
pub struct MacArray {
    lanes: u32,
    input_offset: i32,
    acc: i32,
    use_dsp: bool,
}

impl MacArray {
    /// Creates a MAC array with `lanes` 8-bit lanes, mapped to DSP tiles.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is 0 or greater than 4 (one 32-bit operand word).
    pub fn new(lanes: u32) -> Self {
        assert!((1..=4).contains(&lanes), "lanes must be 1..=4");
        MacArray { lanes, input_offset: 0, acc: 0, use_dsp: true }
    }

    /// Builds the multipliers from LUTs instead of DSP tiles (for boards
    /// whose DSPs are already spent, at a large LUT cost).
    pub fn without_dsp(mut self) -> Self {
        self.use_dsp = false;
        self
    }

    /// Number of lanes.
    pub fn lanes(&self) -> u32 {
        self.lanes
    }

    /// Sets the activation offset added to every input lane.
    pub fn set_input_offset(&mut self, offset: i32) {
        self.input_offset = offset;
    }

    /// The configured activation offset.
    pub fn input_offset(&self) -> i32 {
        self.input_offset
    }

    /// Accumulates `lanes` products of the packed operands and returns the
    /// running accumulator.
    pub fn mac(&mut self, activations: u32, filters: u32) -> i32 {
        let a = arith::unpack_i8x4(activations);
        let f = arith::unpack_i8x4(filters);
        for lane in 0..self.lanes as usize {
            self.acc = self.acc.wrapping_add(
                i32::from(a[lane]).wrapping_add(self.input_offset).wrapping_mul(i32::from(f[lane])),
            );
        }
        self.acc
    }

    /// Single-lane accumulate — the depthwise-convolution fallback the KWS
    /// case study uses when no resources remain for a second CFU datapath.
    pub fn mac_single(&mut self, activation: i32, filter: i32) -> i32 {
        self.acc =
            self.acc.wrapping_add(activation.wrapping_add(self.input_offset).wrapping_mul(filter));
        self.acc
    }

    /// Current accumulator value.
    pub fn acc(&self) -> i32 {
        self.acc
    }

    /// Sets the accumulator (used to seed with a bias).
    pub fn set_acc(&mut self, value: i32) {
        self.acc = value;
    }

    /// Reads the accumulator and clears it.
    pub fn take(&mut self) -> i32 {
        std::mem::replace(&mut self.acc, 0)
    }

    /// Clears accumulator and offset.
    pub fn reset(&mut self) {
        self.acc = 0;
        self.input_offset = 0;
    }

    /// One DSP tile per lane (iCE40UP 16×16 MACs), or ~80 LUTs per 8-bit
    /// multiplier when built from fabric, plus the adder tree.
    pub fn resources(&self) -> Resources {
        let adder_tree = Resources::luts(16 * self.lanes + 40);
        if self.use_dsp {
            Resources { dsps: self.lanes, ffs: 32, ..Resources::ZERO } + adder_tree
        } else {
            Resources { luts: 80 * self.lanes, ffs: 32, ..Resources::ZERO } + adder_tree
        }
    }
}

/// Per-output-channel post-processing parameters: bias, Q31 multiplier,
/// shift. The paper stores these tables inside CFU1 ("per-output channel
/// values for bias, multiplicand, and shift amount were stored in the
/// CFU") and gives CFU2 a post-processing op that is "14× faster".
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChannelParams {
    /// Bias added to the accumulator.
    pub bias: i32,
    /// Q31 quantized multiplier.
    pub multiplier: i32,
    /// Power-of-two shift (positive = left).
    pub shift: i32,
}

/// The output post-processing pipeline: `clamp(offset +
/// requantize(acc + bias))`, with a per-channel parameter table and an
/// auto-advancing channel cursor.
#[derive(Debug, Clone)]
pub struct PostProcessor {
    params: Vec<ChannelParams>,
    cursor: usize,
    output_offset: i32,
    activation_min: i32,
    activation_max: i32,
}

impl Default for PostProcessor {
    fn default() -> Self {
        Self::new()
    }
}

impl PostProcessor {
    /// Creates an empty post-processor with int8 clamp bounds.
    pub fn new() -> Self {
        PostProcessor {
            params: Vec::new(),
            cursor: 0,
            output_offset: 0,
            activation_min: i32::from(i8::MIN),
            activation_max: i32::from(i8::MAX),
        }
    }

    /// Clears the parameter table (new layer).
    pub fn clear(&mut self) {
        self.params.clear();
        self.cursor = 0;
    }

    /// Appends one channel's parameters.
    pub fn push_channel(&mut self, params: ChannelParams) {
        self.params.push(params);
    }

    /// Number of channels loaded.
    pub fn channels(&self) -> usize {
        self.params.len()
    }

    /// Sets the output zero-point.
    pub fn set_output_offset(&mut self, offset: i32) {
        self.output_offset = offset;
    }

    /// Sets the activation clamp range.
    pub fn set_activation_range(&mut self, min: i32, max: i32) {
        self.activation_min = min;
        self.activation_max = max;
    }

    /// Rewinds the channel cursor (start of a new output pixel).
    pub fn rewind(&mut self) {
        self.cursor = 0;
    }

    /// Post-processes one accumulator with the current channel's
    /// parameters and advances the cursor (wrapping over the table, one
    /// table pass per output pixel).
    ///
    /// # Panics
    ///
    /// Panics if no channel parameters were loaded.
    pub fn process(&mut self, acc: i32) -> i32 {
        assert!(!self.params.is_empty(), "post-processor has no channel parameters");
        let p = self.params[self.cursor];
        self.cursor = (self.cursor + 1) % self.params.len();
        self.process_with(acc, p)
    }

    /// Post-processes with explicit parameters (no cursor).
    pub fn process_with(&self, acc: i32, p: ChannelParams) -> i32 {
        let scaled = arith::multiply_by_quantized_multiplier(
            acc.wrapping_add(p.bias),
            p.multiplier,
            p.shift,
        );
        arith::clamp_activation(
            scaled.wrapping_add(self.output_offset),
            self.activation_min,
            self.activation_max,
        )
    }

    /// Full reset to power-on state.
    pub fn reset(&mut self) {
        *self = PostProcessor::new();
    }

    /// The requantizer datapath (32×32 high-mul + rounding shifter +
    /// clamp) is a few hundred LUTs; parameter tables go to BRAM.
    pub fn resources(&self) -> Resources {
        let table_bytes = self.params.capacity().max(64) * 12;
        Resources { luts: 320, ffs: 96, brams: table_bytes.div_ceil(512) as u32, dsps: 0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arith::pack_i8x4;

    #[test]
    fn scratchpad_push_read() {
        let mut sp = Scratchpad::new(4);
        sp.push(10);
        sp.push(20);
        assert_eq!(sp.read(0), 10);
        assert_eq!(sp.read(1), 20);
        assert_eq!(sp.written(), 2);
        assert_eq!(sp.pop(), 10);
        assert_eq!(sp.pop(), 20);
    }

    #[test]
    fn scratchpad_wraps() {
        let mut sp = Scratchpad::new(2);
        sp.push(1);
        sp.push(2);
        sp.push(3); // wraps over index 0
        assert_eq!(sp.read(0), 3);
    }

    #[test]
    fn scratchpad_rewind_keeps_data() {
        let mut sp = Scratchpad::new(4);
        sp.push(7);
        sp.rewind();
        assert_eq!(sp.read(0), 7);
        assert_eq!(sp.pop(), 7);
    }

    #[test]
    fn scratchpad_resources_scale_with_capacity() {
        assert_eq!(Scratchpad::new(128).resources().brams, 1);
        assert_eq!(Scratchpad::new(129).resources().brams, 2);
        assert_eq!(Scratchpad::new(1024).resources().brams, 8);
    }

    #[test]
    fn mac4_matches_dot4_offset() {
        let mut mac = MacArray::new(4);
        mac.set_input_offset(128);
        let a = pack_i8x4([-128, 5, -3, 127]);
        let f = pack_i8x4([1, -2, 3, -4]);
        let r = mac.mac(a, f);
        assert_eq!(r, arith::dot4_offset(a, f, 128));
        // Accumulates across calls.
        let r2 = mac.mac(a, f);
        assert_eq!(r2, 2 * arith::dot4_offset(a, f, 128));
        assert_eq!(mac.take(), r2);
        assert_eq!(mac.acc(), 0);
    }

    #[test]
    fn mac_lane_subset() {
        let mut mac = MacArray::new(2);
        let a = pack_i8x4([1, 1, 99, 99]);
        let f = pack_i8x4([1, 1, 99, 99]);
        assert_eq!(mac.mac(a, f), 2); // only lanes 0-1 participate
    }

    #[test]
    fn mac_single_lane() {
        let mut mac = MacArray::new(4);
        mac.set_input_offset(10);
        assert_eq!(mac.mac_single(-5, 3), (10 - 5) * 3);
    }

    #[test]
    #[should_panic(expected = "lanes")]
    fn mac_lane_bounds() {
        let _ = MacArray::new(5);
    }

    #[test]
    fn mac_resources_dsp_vs_lut() {
        let dsp = MacArray::new(4).resources();
        let lut = MacArray::new(4).without_dsp().resources();
        assert_eq!(dsp.dsps, 4);
        assert_eq!(lut.dsps, 0);
        assert!(lut.luts > dsp.luts + 200);
    }

    #[test]
    fn postproc_pipeline() {
        let mut pp = PostProcessor::new();
        let (m, s) = arith::quantize_multiplier(0.5);
        pp.push_channel(ChannelParams { bias: 10, multiplier: m, shift: s });
        pp.set_output_offset(-1);
        // (90 + 10) * 0.5 - 1 = 49
        assert_eq!(pp.process(90), 49);
    }

    #[test]
    fn postproc_clamps() {
        let mut pp = PostProcessor::new();
        let (m, s) = arith::quantize_multiplier(1.0);
        pp.push_channel(ChannelParams { bias: 0, multiplier: m, shift: s });
        assert_eq!(pp.process(1000), 127);
        assert_eq!(pp.process(-1000), -128);
    }

    #[test]
    fn postproc_cursor_wraps_per_pixel() {
        let mut pp = PostProcessor::new();
        let (m, s) = arith::quantize_multiplier(1.0);
        pp.push_channel(ChannelParams { bias: 1, multiplier: m, shift: s });
        pp.push_channel(ChannelParams { bias: 2, multiplier: m, shift: s });
        assert_eq!(pp.process(0), 1);
        assert_eq!(pp.process(0), 2);
        assert_eq!(pp.process(0), 1); // wrapped
        pp.rewind();
        assert_eq!(pp.process(0), 1);
    }

    #[test]
    #[should_panic(expected = "no channel parameters")]
    fn postproc_requires_params() {
        let mut pp = PostProcessor::new();
        let _ = pp.process(0);
    }
}
