//! CFU operation tracing — the Renode flow's waveform capture.
//!
//! "The Renode emulator also allows us to capture the waveforms from the
//! CFU operation, which is extremely useful for tracking down errors in
//! the hardware design of the user-defined CFU." [`TracedCfu`] wraps any
//! [`Cfu`] and records every operation (selector, operands, result or
//! error, response latency); the trace can be inspected programmatically
//! or dumped as a VCD file for a waveform viewer.

use std::fmt::Write as _;

use crate::interface::{Cfu, CfuError, CfuOp, CfuResponse};
use crate::resources::Resources;

/// One recorded CFU transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// Transaction sequence number (also its start time in the VCD,
    /// which is transaction-indexed).
    pub seq: u64,
    /// The op selector.
    pub op: CfuOp,
    /// First operand.
    pub rs1: u32,
    /// Second operand.
    pub rs2: u32,
    /// Result value, or the error text.
    pub result: Result<u32, String>,
    /// Response latency in cycles (0 for errors).
    pub latency: u32,
}

/// A [`Cfu`] wrapper that records every transaction.
///
/// # Example
///
/// ```
/// use cfu_core::{Cfu, CfuOp};
/// use cfu_core::templates::SimdAddCfu;
/// use cfu_core::trace::TracedCfu;
///
/// let mut cfu = TracedCfu::new(SimdAddCfu::new());
/// cfu.execute(CfuOp::new(0, 0), 1, 2).unwrap();
/// assert_eq!(cfu.trace().len(), 1);
/// assert!(cfu.to_vcd().contains("$var"));
/// ```
#[derive(Debug)]
pub struct TracedCfu<C> {
    inner: C,
    trace: Vec<TraceEntry>,
    limit: usize,
}

impl<C: Cfu> TracedCfu<C> {
    /// Wraps `inner` with an unbounded-ish trace (1M entries).
    pub fn new(inner: C) -> Self {
        TracedCfu { inner, trace: Vec::new(), limit: 1_000_000 }
    }

    /// Wraps with an explicit entry limit (oldest entries are dropped).
    pub fn with_limit(inner: C, limit: usize) -> Self {
        TracedCfu { inner, trace: Vec::new(), limit: limit.max(1) }
    }

    /// The recorded transactions, oldest first.
    pub fn trace(&self) -> &[TraceEntry] {
        &self.trace
    }

    /// Clears the trace (keeps CFU state).
    pub fn clear_trace(&mut self) {
        self.trace.clear();
    }

    /// The wrapped CFU.
    pub fn into_inner(self) -> C {
        self.inner
    }

    /// Renders the trace as a VCD (value-change dump) with one timestep
    /// per transaction — loadable in GTKWave and friends.
    pub fn to_vcd(&self) -> String {
        let mut out = String::new();
        out.push_str("$date simulated $end\n");
        out.push_str("$timescale 1ns $end\n");
        out.push_str(&format!("$scope module {} $end\n", self.inner.name().replace(' ', "_")));
        out.push_str("$var wire 7 ! funct7 $end\n");
        out.push_str("$var wire 3 \" funct3 $end\n");
        out.push_str("$var wire 32 # rs1 $end\n");
        out.push_str("$var wire 32 $ rs2 $end\n");
        out.push_str("$var wire 32 % result $end\n");
        out.push_str("$var wire 1 & error $end\n");
        out.push_str("$upscope $end\n$enddefinitions $end\n");
        for e in &self.trace {
            let _ = writeln!(out, "#{}", e.seq);
            let _ = writeln!(out, "b{:07b} !", e.op.funct7());
            let _ = writeln!(out, "b{:03b} \"", e.op.funct3());
            let _ = writeln!(out, "b{:032b} #", e.rs1);
            let _ = writeln!(out, "b{:032b} $", e.rs2);
            match &e.result {
                Ok(v) => {
                    let _ = writeln!(out, "b{v:032b} %");
                    let _ = writeln!(out, "0&");
                }
                Err(_) => {
                    let _ = writeln!(out, "bx %");
                    let _ = writeln!(out, "1&");
                }
            }
        }
        out
    }
}

impl<C: Cfu> Cfu for TracedCfu<C> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn execute(&mut self, op: CfuOp, rs1: u32, rs2: u32) -> Result<CfuResponse, CfuError> {
        let result = self.inner.execute(op, rs1, rs2);
        let entry = TraceEntry {
            seq: self.trace.len() as u64,
            op,
            rs1,
            rs2,
            result: result.as_ref().map(|r| r.value).map_err(|e| e.to_string()),
            latency: result.as_ref().map_or(0, |r| r.latency),
        };
        if self.trace.len() >= self.limit {
            self.trace.remove(0);
        }
        self.trace.push(entry);
        result
    }

    fn reset(&mut self) {
        self.inner.reset();
    }

    fn resources(&self) -> Resources {
        self.inner.resources()
    }

    fn supports(&self, op: CfuOp) -> bool {
        self.inner.supports(op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::templates::{MacCfu, SimdAddCfu};

    #[test]
    fn records_operations_in_order() {
        let mut cfu = TracedCfu::new(SimdAddCfu::new());
        cfu.execute(CfuOp::new(0, 0), 1, 2).unwrap();
        cfu.execute(CfuOp::new(1, 0), 3, 4).unwrap();
        let t = cfu.trace();
        assert_eq!(t.len(), 2);
        assert_eq!(t[0].rs1, 1);
        assert_eq!(t[1].op, CfuOp::new(1, 0));
        assert_eq!(t[0].result, Ok(3));
    }

    #[test]
    fn records_errors_and_stays_transparent() {
        let mut cfu = TracedCfu::new(SimdAddCfu::new());
        assert!(cfu.execute(CfuOp::new(99, 0), 0, 0).is_err());
        assert!(cfu.trace()[0].result.is_err());
        // Behaviour is unchanged relative to the bare CFU.
        assert_eq!(cfu.execute(CfuOp::new(0, 0), 5, 6).unwrap().value, 11);
    }

    #[test]
    fn limit_drops_oldest() {
        let mut cfu = TracedCfu::with_limit(MacCfu::new(), 3);
        for i in 0..5u32 {
            cfu.execute(CfuOp::new(0, 0), i, 1).unwrap();
        }
        assert_eq!(cfu.trace().len(), 3);
        assert_eq!(cfu.trace()[0].rs1, 2); // entries 0 and 1 dropped
    }

    #[test]
    fn vcd_is_parseable_shape() {
        let mut cfu = TracedCfu::new(SimdAddCfu::new());
        cfu.execute(CfuOp::new(0, 0), 0xFF, 0x01).unwrap();
        let vcd = cfu.to_vcd();
        assert!(vcd.starts_with("$date"));
        assert!(vcd.contains("$enddefinitions"));
        assert!(vcd.contains("#0"));
        assert!(vcd.contains("b00000000000000000000000011111111 #"));
    }

    #[test]
    fn state_passes_through() {
        let mut cfu = TracedCfu::new(MacCfu::new());
        cfu.execute(CfuOp::new(0, 0), 6, 7).unwrap();
        assert_eq!(cfu.execute(CfuOp::new(1, 0), 0, 0).unwrap().value, 42);
        cfu.reset();
        assert_eq!(cfu.execute(CfuOp::new(1, 0), 0, 0).unwrap().value, 0);
        assert_eq!(cfu.trace().len(), 3);
    }
}
