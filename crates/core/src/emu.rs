//! Software emulation of CFUs — the paper's §II-E debug flow.
//!
//! "Users can write a software emulation of their CFU, using the
//! high-level C programming language, that is functionally equivalent but
//! of course much slower, which can be swapped in for the real CFU."
//!
//! [`SwCfu`] wraps a plain Rust closure as a [`Cfu`] so it can be swapped
//! in anywhere a hardware model is used; [`DualCfu`] runs a hardware model
//! and its emulation in lock-step and fails loudly on the first diverging
//! result — exactly the board-side random/directed test the paper
//! describes.

use std::fmt;

use crate::interface::{Cfu, CfuError, CfuOp, CfuResponse};
use crate::resources::Resources;

/// A CFU defined by a plain function — the "software emulation".
///
/// The emulation carries no timing model: every op reports a 1-cycle
/// latency, because its purpose is functional comparison, not
/// performance. It also consumes no FPGA resources.
pub struct SwCfu<F> {
    name: String,
    func: F,
}

impl<F> SwCfu<F>
where
    F: FnMut(CfuOp, u32, u32) -> u32,
{
    /// Wraps `func` as a CFU named `name`.
    pub fn new(name: &str, func: F) -> Self {
        SwCfu { name: name.to_owned(), func }
    }
}

impl<F> fmt::Debug for SwCfu<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SwCfu").field("name", &self.name).finish_non_exhaustive()
    }
}

impl<F> Cfu for SwCfu<F>
where
    F: FnMut(CfuOp, u32, u32) -> u32,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn execute(&mut self, op: CfuOp, rs1: u32, rs2: u32) -> Result<CfuResponse, CfuError> {
        Ok(CfuResponse::single((self.func)(op, rs1, rs2)))
    }

    fn reset(&mut self) {}

    fn resources(&self) -> Resources {
        Resources::ZERO
    }
}

/// A fallible software emulation (can flag protocol errors like the
/// hardware model does). Useful when the emulation should reject the same
/// op sequences the hardware model rejects.
pub struct SwCfuFallible<F> {
    name: String,
    func: F,
}

impl<F> SwCfuFallible<F>
where
    F: FnMut(CfuOp, u32, u32) -> Result<u32, CfuError>,
{
    /// Wraps a fallible function as a CFU named `name`.
    pub fn new(name: &str, func: F) -> Self {
        SwCfuFallible { name: name.to_owned(), func }
    }
}

impl<F> fmt::Debug for SwCfuFallible<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SwCfuFallible").field("name", &self.name).finish_non_exhaustive()
    }
}

impl<F> Cfu for SwCfuFallible<F>
where
    F: FnMut(CfuOp, u32, u32) -> Result<u32, CfuError>,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn execute(&mut self, op: CfuOp, rs1: u32, rs2: u32) -> Result<CfuResponse, CfuError> {
        (self.func)(op, rs1, rs2).map(CfuResponse::single)
    }

    fn reset(&mut self) {}

    fn resources(&self) -> Resources {
        Resources::ZERO
    }
}

/// Divergence between a hardware CFU model and its software emulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// Index of the op in the stream (0-based).
    pub index: usize,
    /// The op that diverged.
    pub op: CfuOp,
    /// Operands fed to both implementations.
    pub operands: (u32, u32),
    /// What the hardware model produced (`Err` text if it errored).
    pub hardware: Result<u32, String>,
    /// What the emulation produced.
    pub emulation: Result<u32, String>,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "op #{} {} rs1=0x{:08x} rs2=0x{:08x}: hardware {:?} != emulation {:?}",
            self.index, self.op, self.operands.0, self.operands.1, self.hardware, self.emulation
        )
    }
}

impl std::error::Error for Divergence {}

/// Runs a hardware model and its software emulation in lock-step,
/// checking every result — the "feed the same sequence of inputs to both
/// the real CFU and to the software emulation" flow.
///
/// On a result mismatch the whole state of both CFUs is suspect, so
/// `execute` reports the divergence as an error and refuses further ops
/// until [`reset`](Cfu::reset).
pub struct DualCfu<H, E> {
    hardware: H,
    emulation: E,
    issued: usize,
    poisoned: bool,
}

impl<H: Cfu, E: Cfu> DualCfu<H, E> {
    /// Pairs a hardware model with its emulation.
    pub fn new(hardware: H, emulation: E) -> Self {
        DualCfu { hardware, emulation, issued: 0, poisoned: false }
    }

    /// The wrapped hardware model.
    pub fn hardware(&self) -> &H {
        &self.hardware
    }

    /// The wrapped emulation.
    pub fn emulation(&self) -> &E {
        &self.emulation
    }

    /// Number of ops issued since the last reset.
    pub fn issued(&self) -> usize {
        self.issued
    }
}

impl<H: Cfu + fmt::Debug, E: Cfu + fmt::Debug> fmt::Debug for DualCfu<H, E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DualCfu")
            .field("hardware", &self.hardware)
            .field("emulation", &self.emulation)
            .field("issued", &self.issued)
            .finish()
    }
}

impl<H: Cfu, E: Cfu> Cfu for DualCfu<H, E> {
    fn name(&self) -> &str {
        self.hardware.name()
    }

    fn execute(&mut self, op: CfuOp, rs1: u32, rs2: u32) -> Result<CfuResponse, CfuError> {
        if self.poisoned {
            return Err(CfuError::Protocol {
                op,
                reason: "a previous op diverged from the software emulation; reset first".into(),
            });
        }
        let index = self.issued;
        self.issued += 1;
        let hw = self.hardware.execute(op, rs1, rs2);
        let em = self.emulation.execute(op, rs1, rs2);
        match (&hw, &em) {
            (Ok(h), Ok(e)) if h.value == e.value => hw,
            _ => {
                self.poisoned = true;
                let d = Divergence {
                    index,
                    op,
                    operands: (rs1, rs2),
                    hardware: hw.map(|r| r.value).map_err(|e| e.to_string()),
                    emulation: em.map(|r| r.value).map_err(|e| e.to_string()),
                };
                Err(CfuError::Protocol { op, reason: d.to_string() })
            }
        }
    }

    fn reset(&mut self) {
        self.hardware.reset();
        self.emulation.reset();
        self.issued = 0;
        self.poisoned = false;
    }

    fn resources(&self) -> Resources {
        self.hardware.resources()
    }

    fn supports(&self, op: CfuOp) -> bool {
        self.hardware.supports(op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::templates::SimdAddCfu;

    fn simd_add_emulation() -> SwCfu<impl FnMut(CfuOp, u32, u32) -> u32> {
        SwCfu::new("emu", |_, a, b| {
            let mut out = 0u32;
            for lane in 0..4 {
                let s = ((a >> (8 * lane)) as u8).wrapping_add((b >> (8 * lane)) as u8);
                out |= u32::from(s) << (8 * lane);
            }
            out
        })
    }

    #[test]
    fn matching_pair_passes() {
        let mut dual = DualCfu::new(SimdAddCfu::new(), simd_add_emulation());
        for i in 0..100u32 {
            let r = dual.execute(CfuOp::new(0, 0), i * 0x01010101, 0x7F7F7F7F).unwrap();
            let _ = r.value;
        }
        assert_eq!(dual.issued(), 100);
    }

    #[test]
    fn diverging_pair_poisons() {
        // A deliberately buggy emulation: plain 32-bit add (carries leak
        // across byte lanes).
        let buggy = SwCfu::new("buggy", |_, a: u32, b: u32| a.wrapping_add(b));
        let mut dual = DualCfu::new(SimdAddCfu::new(), buggy);
        // No lane carries: results agree.
        assert!(dual.execute(CfuOp::new(0, 0), 0x01010101, 0x01010101).is_ok());
        // 0xFF + 1 carries between lanes in the buggy version.
        let err = dual.execute(CfuOp::new(0, 0), 0x0000_00FF, 0x0000_0001).unwrap_err();
        assert!(err.to_string().contains("hardware"));
        // Poisoned until reset.
        assert!(dual.execute(CfuOp::new(0, 0), 0, 0).is_err());
        dual.reset();
        assert!(dual.execute(CfuOp::new(0, 0), 0, 0).is_ok());
    }

    #[test]
    fn sw_cfu_has_no_cost() {
        let mut emu = simd_add_emulation();
        assert_eq!(emu.resources(), Resources::ZERO);
        assert_eq!(emu.execute(CfuOp::new(0, 0), 1, 2).unwrap().latency, 1);
    }
}
