//! Property tests for the CFU core: quantization arithmetic against an
//! f64 oracle, CFU1/CFU2 behavioural invariants, and the §II-E
//! hardware-vs-emulation methodology under proptest.

use cfu_core::arith;
use cfu_core::blocks::{ChannelParams, MacArray, PostProcessor, Scratchpad};
use cfu_core::cfu1::{self, Cfu1, Cfu1Stage};
use cfu_core::cfu2::{self, Cfu2};
use cfu_core::verify::{equivalence_check, OpStream};
use cfu_core::{Cfu, CfuOp};
use proptest::prelude::*;

proptest! {
    /// `multiply_by_quantized_multiplier` tracks the real-valued product
    /// within one rounding step for representable scales.
    #[test]
    fn requantize_matches_f64_oracle(
        acc in -2_000_000i32..2_000_000,
        scale_num in 1u32..1000,
        scale_den in 1u32..1_000_000,
    ) {
        let scale = f64::from(scale_num) / f64::from(scale_den);
        let (m, s) = arith::quantize_multiplier(scale);
        let got = arith::multiply_by_quantized_multiplier(acc, m, s);
        let want = f64::from(acc) * scale;
        // Q31 quantization error on the scale times |acc|, plus rounding.
        let tolerance = (want.abs() * 1e-9 + 1.0).ceil();
        prop_assert!(
            (f64::from(got) - want).abs() <= tolerance,
            "acc={acc} scale={scale}: got {got}, want {want:.3}"
        );
    }

    /// Rounding divide-by-POT is within 0.5 of true division and exact
    /// for exact multiples.
    #[test]
    fn rdbpot_rounds_correctly(x in any::<i32>(), e in 0i32..31) {
        let got = arith::rounding_divide_by_pot(x, e);
        let want = f64::from(x) / (1i64 << e) as f64;
        prop_assert!((f64::from(got) - want).abs() <= 0.5 + 1e-9);
    }

    /// pack/unpack are inverses for all lane values.
    #[test]
    fn pack_unpack_inverse(lanes in any::<[i8; 4]>()) {
        prop_assert_eq!(arith::unpack_i8x4(arith::pack_i8x4(lanes)), lanes);
    }

    /// dot4 equals the scalar sum of products.
    #[test]
    fn dot4_equals_scalar(a in any::<[i8; 4]>(), f in any::<[i8; 4]>()) {
        let want: i32 = a.iter().zip(&f).map(|(&x, &w)| i32::from(x) * i32::from(w)).sum();
        prop_assert_eq!(arith::dot4(arith::pack_i8x4(a), arith::pack_i8x4(f)), want);
    }

    /// The MAC array over packed words equals scalar accumulation.
    #[test]
    fn mac_array_matches_scalar(
        words in proptest::collection::vec((any::<[i8; 4]>(), any::<[i8; 4]>()), 1..32),
        offset in -128i32..=127,
    ) {
        let mut mac = MacArray::new(4);
        mac.set_input_offset(offset);
        let mut want = 0i32;
        for (a, f) in &words {
            mac.mac(arith::pack_i8x4(*a), arith::pack_i8x4(*f));
            for lane in 0..4 {
                want = want.wrapping_add(
                    (i32::from(a[lane]) + offset).wrapping_mul(i32::from(f[lane])),
                );
            }
        }
        prop_assert_eq!(mac.acc(), want);
    }

    /// PostProcessor output is always inside the activation clamp.
    #[test]
    fn postproc_respects_clamp(
        acc in any::<i32>(),
        bias in -100_000i32..100_000,
        shift in -8i32..8,
        lo in -128i32..0,
        hi in 0i32..=127,
    ) {
        let mut pp = PostProcessor::new();
        pp.set_activation_range(lo, hi);
        let (m, _) = arith::quantize_multiplier(0.5);
        pp.push_channel(ChannelParams { bias, multiplier: m, shift });
        let v = pp.process(acc);
        prop_assert!((lo..=hi).contains(&v), "{v} outside [{lo},{hi}]");
    }

    /// Scratchpad: data written is data read, in order, for any prefix
    /// within capacity.
    #[test]
    fn scratchpad_fifo_order(data in proptest::collection::vec(any::<u32>(), 1..128)) {
        let mut sp = Scratchpad::new(128);
        for &w in &data {
            sp.push(w);
        }
        for (i, &w) in data.iter().enumerate() {
            prop_assert_eq!(sp.read(i), w);
            prop_assert_eq!(sp.pop(), w);
        }
    }

    /// CFU2's hardware model and its independently-written software
    /// emulation agree on arbitrary op streams (the paper's §II-E
    /// random CFU-level test, proptest edition).
    #[test]
    fn cfu2_equivalent_to_emulation(seed in any::<u64>(), len in 1usize..400) {
        let ops: Vec<CfuOp> = (0u8..=11).map(|f| CfuOp::new(f, 0)).collect();
        let stream = OpStream::random(seed, len, &ops);
        let mut hw = Cfu2::new();
        let mut emu = cfu2::software_emulation();
        prop_assert!(equivalence_check(&mut hw, &mut emu, &stream).is_ok());
    }

    /// CFU1 RUN1 equals an explicit MAC4 loop over the same buffers for
    /// random inputs/filters — the integrated datapath cannot change the
    /// arithmetic.
    #[test]
    fn cfu1_run1_equals_explicit_mac_loop(
        words in 1usize..16,
        data in proptest::collection::vec((any::<u32>(), any::<u32>()), 16),
        offset in -128i32..=127,
    ) {
        let mut run_cfu = Cfu1::new(Cfu1Stage::Mac4Run1);
        let mut mac_cfu = Cfu1::new(Cfu1Stage::Mac4);
        for cfu in [&mut run_cfu, &mut mac_cfu] {
            cfu.execute(cfu1::ops::SET_DEPTH_WORDS, words as u32, 0).unwrap();
            cfu.execute(cfu1::ops::SET_INPUT_OFFSET, offset as u32, 0).unwrap();
        }
        for (inp, filt) in data.iter().take(words) {
            run_cfu.execute(cfu1::ops::WRITE_INPUT, *inp, 0).unwrap();
            run_cfu.execute(cfu1::ops::WRITE_FILTER, *filt, 0).unwrap();
        }
        let run_acc = run_cfu.execute(cfu1::ops::RUN1, 0, 0).unwrap().value as i32;
        let mut want = 0i32;
        for (inp, filt) in data.iter().take(words) {
            mac_cfu.execute(cfu1::ops::MAC4, *inp, *filt).unwrap();
            want = want.wrapping_add(arith::dot4_offset(*inp, *filt, offset));
        }
        let mac_acc = mac_cfu.execute(cfu1::ops::TAKE_ACC, 0, 0).unwrap().value as i32;
        prop_assert_eq!(run_acc, want);
        prop_assert_eq!(mac_acc, want);
    }

    /// CFU stage gating is monotone: any op supported at stage S is
    /// supported at every later stage.
    #[test]
    fn cfu1_stage_support_is_monotone(funct7 in 0u8..32) {
        let op = CfuOp::new(funct7, 0);
        let mut seen_supported = false;
        for stage in Cfu1Stage::ALL {
            let supported = Cfu1::new(stage).supports(op);
            if seen_supported {
                prop_assert!(supported, "{op} lost at {stage:?}");
            }
            seen_supported |= supported;
        }
    }

    /// Reset returns CFU2 to a state equivalent to a fresh instance for
    /// any prior op stream.
    #[test]
    fn cfu2_reset_is_fresh(seed in any::<u64>()) {
        let ops: Vec<CfuOp> = (0u8..=11).map(|f| CfuOp::new(f, 0)).collect();
        let stream = OpStream::random(seed, 100, &ops);
        let mut dirty = Cfu2::new();
        for &(op, a, b) in stream.items() {
            let _ = dirty.execute(op, a, b);
        }
        dirty.reset();
        let mut fresh = Cfu2::new();
        let probe = OpStream::random(seed ^ 0xDEAD, 100, &ops);
        prop_assert!(equivalence_check(&mut dirty, &mut fresh, &probe).is_ok());
    }
}

/// Resource model sanity: every CFU1 stage fits an Arty-class budget and
/// reports non-trivial usage.
#[test]
fn cfu1_resources_reasonable_at_every_stage() {
    for stage in Cfu1Stage::ALL {
        let r = Cfu1::new(stage).resources();
        assert!(r.luts > 100, "{stage:?}: {r}");
        assert!(r.luts < 5000, "{stage:?}: {r}");
    }
}
