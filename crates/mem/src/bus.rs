//! The system bus: an address map routing accesses to devices.

use std::any::Any;
use std::fmt;

use crate::device::{BusDevice, ReadResult};
use crate::sram::Sram;

use crate::error::MemError;

/// Opaque handle identifying a mapped region on a [`Bus`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RegionId(usize);

/// Description of one mapped region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionInfo {
    /// Region name (e.g. `"rom"`, `"sram"`, `"main_ram"`).
    pub name: String,
    /// First address of the region.
    pub base: u32,
    /// Size in bytes.
    pub size: u32,
    /// `true` when the device rejects stores.
    pub rom: bool,
}

impl RegionInfo {
    /// `true` when `addr` falls inside this region.
    pub fn contains(&self, addr: u32) -> bool {
        addr >= self.base && u64::from(addr) < u64::from(self.base) + u64::from(self.size)
    }

    /// One-past-the-last address (as u64 to avoid overflow at 4 GiB).
    pub fn end(&self) -> u64 {
        u64::from(self.base) + u64::from(self.size)
    }
}

/// Per-device traffic counters, used by the profiler to attribute memory
/// time the way the paper's profiling step does ("flash ROM accesses were
/// slower than they should be").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeviceStats {
    /// Number of read transactions.
    pub reads: u64,
    /// Number of write transactions.
    pub writes: u64,
    /// Bytes read.
    pub bytes_read: u64,
    /// Bytes written.
    pub bytes_written: u64,
    /// Total device cycles spent in reads.
    pub read_cycles: u64,
    /// Total device cycles spent in writes.
    pub write_cycles: u64,
}

impl DeviceStats {
    /// Total cycles across reads and writes.
    pub fn total_cycles(&self) -> u64 {
        self.read_cycles + self.write_cycles
    }
}

/// The device behind a region. Plain SRAM backs nearly every hot access
/// (fetch peeks, load/store data, cache-line fills) and its accesses are
/// cheaper than a `dyn` indirect call, so it gets its own statically
/// dispatched arm; everything else stays behind the trait object. The
/// split is invisible outside this module — every arm runs the same
/// [`BusDevice`] methods.
enum Slot {
    Sram(Sram),
    Other(Box<dyn BusDevice>),
}

impl Slot {
    #[inline]
    fn dev(&mut self) -> &mut dyn BusDevice {
        match self {
            Slot::Sram(s) => s,
            Slot::Other(d) => &mut **d,
        }
    }

    #[inline]
    fn dev_ref(&self) -> &dyn BusDevice {
        match self {
            Slot::Sram(s) => s,
            Slot::Other(d) => &**d,
        }
    }
}

struct Mapped {
    info: RegionInfo,
    slot: Slot,
    stats: DeviceStats,
    /// [`BusDevice::timing_stateless`], sampled at map time (the trait
    /// documents it as a constant property): lets [`Bus::peek`] skip the
    /// virtual `reset_timing` call for devices where it is a no-op.
    timing_stateless: bool,
}

impl fmt::Debug for Mapped {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mapped").field("info", &self.info).field("stats", &self.stats).finish()
    }
}

/// The system interconnect: routes addresses to devices and accounts
/// cycles and traffic per device.
///
/// Regions must not overlap; [`map`](Bus::map) panics if they do, because
/// an overlapping LiteX CSR map is a build-time error there too.
#[derive(Debug, Default)]
pub struct Bus {
    regions: Vec<Mapped>,
    /// Bumped on every mutation of memory contents ([`Bus::write`] and
    /// [`Bus::load_image`]); consumers caching derived views of memory
    /// (e.g. the simulator's predecoded-instruction store) compare it to
    /// detect staleness.
    generation: u64,
    /// Index of the most recently routed region — accesses cluster, so
    /// the common case is one range check instead of a map scan.
    hot: usize,
}

impl Bus {
    /// Creates an empty bus.
    pub fn new() -> Self {
        Bus::default()
    }

    /// Maps `device` at `base`, returning a handle for stats queries.
    ///
    /// # Panics
    ///
    /// Panics if the new region overlaps an existing one or wraps past the
    /// end of the 32-bit address space.
    pub fn map(&mut self, name: &str, base: u32, device: impl BusDevice + 'static) -> RegionId {
        let size = device.size();
        let info = RegionInfo { name: name.to_owned(), base, size, rom: device.is_rom() };
        assert!(info.end() <= 1 << 32, "region `{name}` wraps the address space");
        for existing in &self.regions {
            let e = &existing.info;
            assert!(
                info.end() <= u64::from(e.base) || u64::from(info.base) >= e.end(),
                "region `{name}` [{:#x},{:#x}) overlaps `{}` [{:#x},{:#x})",
                info.base,
                info.end(),
                e.name,
                e.base,
                e.end(),
            );
        }
        let timing_stateless = device.timing_stateless();
        // Concrete-type probe for the static-dispatch arm; the `Option`
        // dance moves the device out again without double-boxing.
        let mut holder = Some(device);
        let slot = match (&mut holder as &mut dyn Any).downcast_mut::<Option<Sram>>() {
            Some(sram) => Slot::Sram(sram.take().expect("just matched")),
            None => Slot::Other(Box::new(holder.take().expect("untaken"))),
        };
        self.regions.push(Mapped { info, slot, stats: DeviceStats::default(), timing_stateless });
        RegionId(self.regions.len() - 1)
    }

    /// Looks up the region containing `addr`.
    pub fn region_of(&self, addr: u32) -> Option<(RegionId, &RegionInfo)> {
        self.regions
            .iter()
            .enumerate()
            .find(|(_, m)| m.info.contains(addr))
            .map(|(i, m)| (RegionId(i), &m.info))
    }

    /// Looks up a region by name.
    pub fn region_by_name(&self, name: &str) -> Option<(RegionId, &RegionInfo)> {
        self.regions
            .iter()
            .enumerate()
            .find(|(_, m)| m.info.name == name)
            .map(|(i, m)| (RegionId(i), &m.info))
    }

    /// All mapped regions, in mapping order.
    pub fn regions(&self) -> impl Iterator<Item = (RegionId, &RegionInfo)> {
        self.regions.iter().enumerate().map(|(i, m)| (RegionId(i), &m.info))
    }

    /// Traffic statistics for a region.
    pub fn stats(&self, id: RegionId) -> DeviceStats {
        self.regions[id.0].stats
    }

    /// Clears all per-device statistics and timing state (open rows,
    /// sequential-burst trackers) without touching contents.
    pub fn reset_stats(&mut self) {
        for m in &mut self.regions {
            m.stats = DeviceStats::default();
            m.slot.dev().reset_timing();
        }
    }

    #[inline]
    fn route(&mut self, addr: u32, len: usize) -> Result<(usize, u32), MemError> {
        let idx = if self.regions.get(self.hot).is_some_and(|m| m.info.contains(addr)) {
            self.hot
        } else {
            let idx = self
                .regions
                .iter()
                .position(|m| m.info.contains(addr))
                .ok_or(MemError::Unmapped { addr })?;
            self.hot = idx;
            idx
        };
        let info = &self.regions[idx].info;
        if u64::from(addr) + len as u64 > info.end() {
            return Err(MemError::OutOfBounds { addr, len });
        }
        Ok((idx, addr - info.base))
    }

    /// Reads `buf.len()` bytes at `addr`, returning device cycles consumed.
    ///
    /// # Errors
    ///
    /// [`MemError::Unmapped`] for holes in the map, or any device error
    /// with the *absolute* fault address.
    #[inline]
    pub fn read(&mut self, addr: u32, buf: &mut [u8]) -> Result<u64, MemError> {
        let (idx, offset) = self.route(addr, buf.len())?;
        let m = &mut self.regions[idx];
        let cycles = match &mut m.slot {
            Slot::Sram(s) => s.read(offset, buf),
            Slot::Other(d) => d.read(offset, buf),
        }
        .map_err(|e| rebase(e, m.info.base))?;
        m.stats.reads += 1;
        m.stats.bytes_read += buf.len() as u64;
        m.stats.read_cycles += cycles;
        Ok(cycles)
    }

    /// Writes `data` at `addr`, returning device cycles consumed.
    ///
    /// # Errors
    ///
    /// [`MemError::Unmapped`], [`MemError::ReadOnly`] (ROM regions) or
    /// [`MemError::OutOfBounds`].
    #[inline]
    pub fn write(&mut self, addr: u32, data: &[u8]) -> Result<u64, MemError> {
        let (idx, offset) = self.route(addr, data.len())?;
        let m = &mut self.regions[idx];
        let cycles = match &mut m.slot {
            Slot::Sram(s) => s.write(offset, data),
            Slot::Other(d) => d.write(offset, data),
        }
        .map_err(|e| rebase(e, m.info.base))?;
        m.stats.writes += 1;
        m.stats.bytes_written += data.len() as u64;
        m.stats.write_cycles += cycles;
        self.generation = self.generation.wrapping_add(1);
        Ok(cycles)
    }

    /// Reads a little-endian 32-bit word.
    ///
    /// # Errors
    ///
    /// As [`read`](Bus::read).
    pub fn read_u32(&mut self, addr: u32) -> Result<ReadResult<u32>, MemError> {
        let mut b = [0u8; 4];
        let cycles = self.read(addr, &mut b)?;
        Ok(ReadResult { value: u32::from_le_bytes(b), cycles })
    }

    /// Reads a little-endian 16-bit halfword.
    ///
    /// # Errors
    ///
    /// As [`read`](Bus::read).
    pub fn read_u16(&mut self, addr: u32) -> Result<ReadResult<u16>, MemError> {
        let mut b = [0u8; 2];
        let cycles = self.read(addr, &mut b)?;
        Ok(ReadResult { value: u16::from_le_bytes(b), cycles })
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// As [`read`](Bus::read).
    pub fn read_u8(&mut self, addr: u32) -> Result<ReadResult<u8>, MemError> {
        let mut b = [0u8; 1];
        let cycles = self.read(addr, &mut b)?;
        Ok(ReadResult { value: b[0], cycles })
    }

    /// Writes a little-endian 32-bit word.
    ///
    /// # Errors
    ///
    /// As [`write`](Bus::write).
    pub fn write_u32(&mut self, addr: u32, value: u32) -> Result<u64, MemError> {
        self.write(addr, &value.to_le_bytes())
    }

    /// Writes a little-endian 16-bit halfword.
    ///
    /// # Errors
    ///
    /// As [`write`](Bus::write).
    pub fn write_u16(&mut self, addr: u32, value: u16) -> Result<u64, MemError> {
        self.write(addr, &value.to_le_bytes())
    }

    /// Writes one byte.
    ///
    /// # Errors
    ///
    /// As [`write`](Bus::write).
    pub fn write_u8(&mut self, addr: u32, value: u8) -> Result<u64, MemError> {
        self.write(addr, &[value])
    }

    /// Loader back-door: installs `data` at `addr` bypassing ROM write
    /// protection and consuming no simulated time.
    ///
    /// # Errors
    ///
    /// [`MemError::Unmapped`] / [`MemError::OutOfBounds`].
    pub fn load_image(&mut self, addr: u32, data: &[u8]) -> Result<(), MemError> {
        let (idx, offset) = self.route(addr, data.len())?;
        let m = &mut self.regions[idx];
        m.slot.dev().poke(offset, data).map_err(|e| rebase(e, m.info.base))?;
        self.generation = self.generation.wrapping_add(1);
        Ok(())
    }

    /// Memory-mutation counter: incremented by every successful
    /// [`write`](Bus::write) and [`load_image`](Bus::load_image).
    ///
    /// Host-side caches of derived memory state (such as a predecoded
    /// instruction store) snapshot this value and treat any change as a
    /// signal that cached contents may be stale. Reads and
    /// [`peek`](Bus::peek) never move it.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Downcasts the device in `id`'s region to a concrete type, for
    /// peripherals that expose host-side state (see
    /// [`BusDevice::as_any`]). Returns `None` when the device does not
    /// opt in or the type does not match.
    pub fn device_as<T: 'static>(&self, id: RegionId) -> Option<&T> {
        self.regions[id.0].slot.dev_ref().as_any()?.downcast_ref::<T>()
    }

    /// Timing-free read for debuggers and golden-test checks.
    ///
    /// # Errors
    ///
    /// [`MemError::Unmapped`] / [`MemError::OutOfBounds`].
    #[inline]
    pub fn peek(&mut self, addr: u32, buf: &mut [u8]) -> Result<(), MemError> {
        let (idx, offset) = self.route(addr, buf.len())?;
        let m = &mut self.regions[idx];
        match &mut m.slot {
            // SRAM is timing-stateless: no reset needed, and the read
            // inlines (this is the data source for every cached load and
            // predecoded fetch).
            Slot::Sram(s) => s.read(offset, buf).map(drop),
            Slot::Other(d) => {
                let r = d.read(offset, buf).map(drop);
                if r.is_ok() && !m.timing_stateless {
                    d.reset_timing();
                }
                r
            }
        }
        .map_err(|e| rebase(e, m.info.base))
    }

    /// A [`read`](Bus::read) whose data is discarded: identical routing,
    /// device-timing evolution, statistics and returned cycle count,
    /// without the caller providing a buffer. Used by timing-only
    /// consumers (cache-line fills whose bytes nobody reads, trace
    /// replay) — the device still observes a real read.
    ///
    /// # Errors
    ///
    /// As [`read`](Bus::read).
    #[inline]
    pub fn read_cost(&mut self, addr: u32, len: u32) -> Result<u64, MemError> {
        self.read_cost_run(addr, len, 1)
    }

    /// The timing of `count` back-to-back reads of `len` bytes, the k-th
    /// at `addr + k*len` — routing, statistics and device-timing
    /// evolution identical to `count` individual [`read`](Bus::read)
    /// calls, without transferring data. When the whole run falls inside
    /// one region the device charges it through
    /// [`BusDevice::read_cost_run`] (closed-form for bursty devices);
    /// a run straddling regions falls back to per-access charging.
    ///
    /// # Errors
    ///
    /// As [`read`](Bus::read), at the first failing access.
    pub fn read_cost_run(&mut self, addr: u32, len: u32, count: u32) -> Result<u64, MemError> {
        if count == 0 {
            return Ok(0);
        }
        let span = u64::from(len) * u64::from(count);
        if let Ok((idx, offset)) = self.route(addr, span as usize) {
            let m = &mut self.regions[idx];
            let cycles = match &mut m.slot {
                Slot::Sram(s) => s.read_cost_run(offset, len, count),
                Slot::Other(d) => d.read_cost_run(offset, len, count),
            }
            .map_err(|e| rebase(e, m.info.base))?;
            m.stats.reads += u64::from(count);
            m.stats.bytes_read += span;
            m.stats.read_cycles += cycles;
            return Ok(cycles);
        }
        // The run leaves the first region (or starts unmapped): charge
        // per access so partial effects and the fault address match the
        // individual-read sequence exactly.
        if count == 1 {
            let mut scratch = [0u8; 64];
            return if len as usize <= scratch.len() {
                self.read(addr, &mut scratch[..len as usize])
            } else {
                self.read(addr, &mut vec![0u8; len as usize])
            };
        }
        let mut total = 0u64;
        for k in 0..count {
            total += self.read_cost_run(addr + k * len, len, 1)?;
        }
        Ok(total)
    }

    /// `true` when the region containing `addr` reports
    /// [`BusDevice::timing_stateless`] — its access timing is
    /// history-free, so charges against it commute with accesses to
    /// other regions. `false` for unmapped addresses.
    pub fn timing_stateless_at(&self, addr: u32) -> bool {
        self.regions.iter().find(|m| m.info.contains(addr)).is_some_and(|m| m.timing_stateless)
    }

    /// The region containing `addr`, if any.
    pub fn region_at(&self, addr: u32) -> Option<RegionId> {
        self.regions.iter().position(|m| m.info.contains(addr)).map(RegionId)
    }

    /// Credits a region's statistics with `reads` reads totalling
    /// `bytes` bytes and `cycles` cycles that were charged out-of-band —
    /// bulk replay paths that memoize a stateless device's access cost
    /// and account the traffic without routing every access.
    pub fn note_reads(&mut self, id: RegionId, reads: u64, bytes: u64, cycles: u64) {
        let stats = &mut self.regions[id.0].stats;
        stats.reads += reads;
        stats.bytes_read += bytes;
        stats.read_cycles += cycles;
    }

    /// [`timing_stateless_at`](Bus::timing_stateless_at) over a span:
    /// `true` when every mapped region overlapping `[addr, addr+len)`
    /// is timing-stateless. Unmapped holes don't disqualify the span —
    /// an access landing in one faults identically either way.
    pub fn timing_stateless_range(&self, addr: u32, len: u32) -> bool {
        let end = u64::from(addr) + u64::from(len);
        self.regions
            .iter()
            .filter(|m| u64::from(m.info.base) < end && m.info.end() > u64::from(addr))
            .all(|m| m.timing_stateless)
    }

    /// [`BusDevice::timing_partition_mask`] for the region `id`, whose
    /// containment of `addr` the caller has already established; `span`
    /// is clamped to the region end. Accesses whose partition masks are
    /// disjoint commute — see the device-trait method for the contract.
    pub fn timing_partition_mask(&self, id: RegionId, addr: u32, span: u64) -> u64 {
        let m = &self.regions[id.0];
        let off = addr - m.info.base;
        let span = span.min(m.info.end() - u64::from(addr)) as u32;
        m.slot.dev_ref().timing_partition_mask(off, span.max(1))
    }

    /// [`BusDevice::timing_partition_hold`] for the region `id`: the
    /// partition mask of `[addr, addr + span)` plus the *absolute*
    /// address up to which that mask stays a superset for any contained
    /// access — lets a caller memoize the mask across a streaming
    /// pattern (e.g. once per DRAM row).
    pub fn timing_partition_hold(&self, id: RegionId, addr: u32, span: u64) -> (u64, u32) {
        let m = &self.regions[id.0];
        let off = addr - m.info.base;
        let span = span.min(m.info.end() - u64::from(addr)) as u32;
        let (mask, hold_end) = m.slot.dev_ref().timing_partition_hold(off, span.max(1));
        (mask, m.info.base.saturating_add(hold_end))
    }

    /// [`timing_partition_mask`](Bus::timing_partition_mask) with the
    /// region resolved by address. Unmapped addresses return the
    /// all-partitions mask (conservative: never claims commutativity
    /// for an access that will fault).
    pub fn timing_partition_mask_at(&self, addr: u32, span: u64) -> u64 {
        match self.region_at(addr) {
            Some(id) => self.timing_partition_mask(id, addr, span),
            None => !0,
        }
    }

    /// Replays the *device-timing side effect* of a [`peek`](Bus::peek)
    /// at `addr` — routing plus [`BusDevice::reset_timing`] — without
    /// transferring any data. For every device in this crate a peek's net
    /// effect on timing state is exactly the trailing `reset_timing`
    /// (SRAM is stateless; the flash's sequential-burst tracker and the
    /// DDR3 open rows are set by the read and then cleared), so a trace
    /// replayer can stand in for peeks with this call alone.
    ///
    /// # Errors
    ///
    /// [`MemError::Unmapped`] for holes in the map.
    #[inline]
    pub fn reset_device_timing(&mut self, addr: u32) -> Result<(), MemError> {
        let (idx, _) = self.route(addr, 1)?;
        self.regions[idx].slot.dev().reset_timing();
        Ok(())
    }
}

/// Converts a device-relative fault address into an absolute one.
fn rebase(e: MemError, base: u32) -> MemError {
    match e {
        MemError::OutOfBounds { addr, len } => MemError::OutOfBounds { addr: base + addr, len },
        MemError::ReadOnly { addr } => MemError::ReadOnly { addr: base + addr },
        MemError::Misaligned { addr, required } => {
            MemError::Misaligned { addr: base + addr, required }
        }
        MemError::Unmapped { addr } => MemError::Unmapped { addr: base + addr },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flash::{SpiFlash, SpiWidth};
    use crate::sram::Sram;

    fn demo_bus() -> Bus {
        let mut bus = Bus::new();
        bus.map("rom", 0x0000_0000, SpiFlash::new(4096, SpiWidth::Single));
        bus.map("sram", 0x1000_0000, Sram::new(1024));
        bus
    }

    #[test]
    fn routes_to_correct_device() {
        let mut bus = demo_bus();
        bus.write_u32(0x1000_0004, 7).unwrap();
        assert_eq!(bus.read_u32(0x1000_0004).unwrap().value, 7);
        let (_, info) = bus.region_of(0x1000_0004).unwrap();
        assert_eq!(info.name, "sram");
    }

    #[test]
    fn unmapped_hole_faults() {
        let mut bus = demo_bus();
        assert_eq!(bus.read_u32(0x2000_0000), Err(MemError::Unmapped { addr: 0x2000_0000 }));
    }

    #[test]
    fn rom_write_fault_is_absolute() {
        let mut bus = demo_bus();
        assert_eq!(bus.write_u8(0x0000_0010, 1), Err(MemError::ReadOnly { addr: 0x10 }));
    }

    #[test]
    fn access_straddling_region_end_faults() {
        let mut bus = demo_bus();
        assert!(matches!(bus.read_u32(0x1000_0000 + 1022), Err(MemError::OutOfBounds { .. })));
    }

    #[test]
    #[should_panic(expected = "overlaps")]
    fn overlapping_map_panics() {
        let mut bus = demo_bus();
        bus.map("bad", 0x0000_0800, Sram::new(8192));
    }

    #[test]
    fn stats_accumulate() {
        let mut bus = demo_bus();
        let (sram, _) = bus.region_by_name("sram").unwrap();
        bus.write_u32(0x1000_0000, 1).unwrap();
        bus.read_u32(0x1000_0000).unwrap();
        bus.read_u32(0x1000_0000).unwrap();
        let s = bus.stats(sram);
        assert_eq!(s.reads, 2);
        assert_eq!(s.writes, 1);
        assert_eq!(s.bytes_read, 8);
        assert!(s.total_cycles() >= 3);
        bus.reset_stats();
        assert_eq!(bus.stats(sram), DeviceStats::default());
    }

    #[test]
    fn load_image_bypasses_rom_protection() {
        let mut bus = demo_bus();
        bus.load_image(0, &[1, 2, 3, 4]).unwrap();
        assert_eq!(bus.read_u32(0).unwrap().value, u32::from_le_bytes([1, 2, 3, 4]));
    }

    #[test]
    fn peek_does_not_change_stats() {
        let mut bus = demo_bus();
        let (rom, _) = bus.region_by_name("rom").unwrap();
        let mut b = [0u8; 4];
        bus.peek(0, &mut b).unwrap();
        // peek routes through the device but stats shouldn't count it... it
        // does touch the device read path; assert only that reads counter is
        // untouched by design (stats recorded in Bus::read, not device).
        assert_eq!(bus.stats(rom).reads, 0);
    }

    #[test]
    fn generation_tracks_mutations_only() {
        let mut bus = demo_bus();
        let g0 = bus.generation();
        bus.read_u32(0x1000_0000).unwrap();
        let mut b = [0u8; 4];
        bus.peek(0x1000_0000, &mut b).unwrap();
        assert_eq!(bus.generation(), g0, "reads and peeks must not move the generation");
        bus.write_u32(0x1000_0000, 7).unwrap();
        assert_eq!(bus.generation(), g0 + 1);
        bus.load_image(0, &[1, 2, 3, 4]).unwrap();
        assert_eq!(bus.generation(), g0 + 2);
        // Failed writes leave memory untouched and the generation alone.
        assert!(bus.write_u8(0x0000_0010, 1).is_err());
        assert!(bus.read_u32(0x2000_0000).is_err());
        assert_eq!(bus.generation(), g0 + 2);
    }

    #[test]
    fn regions_iteration() {
        let bus = demo_bus();
        let names: Vec<_> = bus.regions().map(|(_, i)| i.name.clone()).collect();
        assert_eq!(names, ["rom", "sram"]);
    }

    #[test]
    fn read_cost_matches_read_exactly() {
        // Sequential flash reads are timing-stateful (burst tracker), so
        // interleaving checks that read_cost evolves the device exactly
        // like read: same cycles, same stats.
        let mut a = demo_bus();
        let mut b = demo_bus();
        let (rom_a, _) = a.region_by_name("rom").unwrap();
        let (rom_b, _) = b.region_by_name("rom").unwrap();
        let mut buf = [0u8; 32];
        for addr in [0u32, 32, 64, 256, 288] {
            let ca = a.read(addr, &mut buf).unwrap();
            let cb = b.read_cost(addr, 32).unwrap();
            assert_eq!(ca, cb, "cycles diverged at {addr:#x}");
        }
        assert_eq!(a.stats(rom_a), b.stats(rom_b));
    }

    #[test]
    fn reset_device_timing_reproduces_peek_timing_effect() {
        // After a peek (or a reset_device_timing), the next sequential
        // flash read must cost the same in both buses: the peek's net
        // timing effect is exactly the reset.
        let mut a = demo_bus();
        let mut b = demo_bus();
        let mut buf = [0u8; 4];
        a.read(0, &mut buf).unwrap();
        b.read(0, &mut buf).unwrap();
        let mut p = [0u8; 4];
        a.peek(0x10, &mut p).unwrap();
        b.reset_device_timing(0x10).unwrap();
        // A would-be-sequential read: burst state was cleared in both.
        let ca = a.read(4, &mut buf).unwrap();
        let cb = b.read(4, &mut buf).unwrap();
        assert_eq!(ca, cb);
        assert_eq!(b.generation(), a.generation(), "neither path mutates contents");
    }
}
