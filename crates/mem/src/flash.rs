//! Execute-in-place (XIP) SPI NOR flash model.

use crate::device::{check_bounds, BusDevice};
use crate::error::MemError;

/// Number of data lines used by the SPI flash controller.
///
/// Upgrading the controller from [`Single`](SpiWidth::Single) to
/// [`Quad`](SpiWidth::Quad) is the paper's first Keyword-Spotting
/// optimization (`QuadSPI`, 3.04× overall speedup on Fomu).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SpiWidth {
    /// Classic 1-bit SPI: 8 SCK cycles per byte.
    #[default]
    Single,
    /// Dual SPI: 4 SCK cycles per byte.
    Dual,
    /// Quad SPI: 2 SCK cycles per byte.
    Quad,
}

impl SpiWidth {
    /// SPI clock cycles needed to transfer one byte of data.
    pub fn sck_per_byte(self) -> u64 {
        match self {
            SpiWidth::Single => 8,
            SpiWidth::Dual => 4,
            SpiWidth::Quad => 2,
        }
    }

    /// SPI clock cycles for the command + 24-bit address + dummy phase of a
    /// random (non-sequential) read. The command byte is always sent on one
    /// line; address and dummy ride the configured width.
    pub fn command_overhead(self) -> u64 {
        let cmd = 8; // command byte, always 1-bit
        let addr = 3 * self.sck_per_byte();
        let dummy = 8; // typical fast-read dummy cycles
        cmd + addr + dummy
    }
}

/// XIP SPI NOR flash: the code/weight store of small boards such as Fomu
/// (2 MB part).
///
/// Timing model: a read that continues exactly where the previous one ended
/// streams at [`SpiWidth::sck_per_byte`]; any other read pays a full
/// command/address/dummy sequence first. System cycles are SPI cycles
/// multiplied by [`clock_ratio`](SpiFlash::set_clock_ratio) (the SPI clock
/// usually runs at half the system clock).
///
/// # Example
///
/// ```
/// use cfu_mem::{BusDevice, SpiFlash, SpiWidth};
/// let mut single = SpiFlash::new(1 << 20, SpiWidth::Single);
/// let mut quad = SpiFlash::new(1 << 20, SpiWidth::Quad);
/// let mut buf = [0u8; 4];
/// let slow = single.read(0, &mut buf).unwrap();
/// let fast = quad.read(0, &mut buf).unwrap();
/// assert!(slow > 2 * fast, "quad SPI must be >2x faster on random reads");
/// ```
#[derive(Debug, Clone)]
pub struct SpiFlash {
    data: Vec<u8>,
    width: SpiWidth,
    clock_ratio: u64,
    next_seq: Option<u32>,
}

impl SpiFlash {
    /// Creates an erased (0xFF-filled) flash of `size` bytes.
    pub fn new(size: u32, width: SpiWidth) -> Self {
        SpiFlash { data: vec![0xFF; size as usize], width, clock_ratio: 1, next_seq: None }
    }

    /// Creates a flash initialized with `image` (padded with 0xFF).
    pub fn with_image(size: u32, width: SpiWidth, image: &[u8]) -> Self {
        let mut flash = Self::new(size, width);
        let n = image.len().min(flash.data.len());
        flash.data[..n].copy_from_slice(&image[..n]);
        flash
    }

    /// The configured SPI width.
    pub fn width(&self) -> SpiWidth {
        self.width
    }

    /// Reconfigures the controller width (the `QuadSPI` upgrade).
    pub fn set_width(&mut self, width: SpiWidth) {
        self.width = width;
        self.next_seq = None;
    }

    /// Sets the system-clock : SPI-clock ratio (default 1: the LiteX
    /// spiflash PHY clocks SCK at the system clock).
    pub fn set_clock_ratio(&mut self, ratio: u64) {
        assert!(ratio >= 1, "clock ratio must be at least 1");
        self.clock_ratio = ratio;
    }

    fn spi_to_sys(&self, spi_cycles: u64) -> u64 {
        spi_cycles * self.clock_ratio
    }
}

impl BusDevice for SpiFlash {
    fn size(&self) -> u32 {
        self.data.len() as u32
    }

    fn read(&mut self, offset: u32, buf: &mut [u8]) -> Result<u64, MemError> {
        check_bounds(self.size(), offset, buf.len())?;
        let n = buf.len();
        buf.copy_from_slice(&self.data[offset as usize..offset as usize + n]);
        let mut spi = self.width.sck_per_byte() * n as u64;
        if self.next_seq != Some(offset) {
            spi += self.width.command_overhead();
        }
        self.next_seq = Some(offset + n as u32);
        Ok(self.spi_to_sys(spi))
    }

    fn read_cost_run(&mut self, offset: u32, len: u32, count: u32) -> Result<u64, MemError> {
        if count == 0 {
            return Ok(0);
        }
        let span = len.checked_mul(count).ok_or(MemError::OutOfBounds { addr: offset, len: 0 })?;
        check_bounds(self.size(), offset, span as usize)?;
        // First access pays the command/address/dummy sequence unless it
        // continues the tracked burst; each subsequent read starts
        // exactly where the previous ended, so it streams data-only.
        let mut spi = self.width.sck_per_byte() * u64::from(span);
        if self.next_seq != Some(offset) {
            spi += self.width.command_overhead();
        }
        self.next_seq = Some(offset + span);
        Ok(self.spi_to_sys(spi))
    }

    fn write(&mut self, offset: u32, _data: &[u8]) -> Result<u64, MemError> {
        Err(MemError::ReadOnly { addr: offset })
    }

    fn is_rom(&self) -> bool {
        true
    }

    fn poke(&mut self, offset: u32, data: &[u8]) -> Result<(), MemError> {
        check_bounds(self.size(), offset, data.len())?;
        self.data[offset as usize..offset as usize + data.len()].copy_from_slice(data);
        Ok(())
    }

    fn reset_timing(&mut self) {
        self.next_seq = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_reads_are_cheaper() {
        let mut f = SpiFlash::new(4096, SpiWidth::Single);
        let mut b = [0u8; 4];
        let first = f.read(0, &mut b).unwrap();
        let seq = f.read(4, &mut b).unwrap();
        assert!(seq < first);
        // Jumping elsewhere pays the command overhead again.
        let random = f.read(1024, &mut b).unwrap();
        assert_eq!(random, first);
    }

    #[test]
    fn quad_is_faster_than_single() {
        let mut s = SpiFlash::new(4096, SpiWidth::Single);
        let mut q = SpiFlash::new(4096, SpiWidth::Quad);
        let mut b = [0u8; 64];
        // Stream 64 bytes sequentially: quad should approach 4x.
        s.read(0, &mut b).unwrap();
        q.read(0, &mut b).unwrap();
        let s2 = s.read(64, &mut b).unwrap();
        let q2 = q.read(64, &mut b).unwrap();
        assert_eq!(s2, 8 * 64);
        assert_eq!(q2, 2 * 64);
    }

    #[test]
    fn rom_rejects_writes_but_allows_poke() {
        let mut f = SpiFlash::new(64, SpiWidth::Quad);
        assert_eq!(f.write(0, &[1]), Err(MemError::ReadOnly { addr: 0 }));
        f.poke(0, &[0xAB]).unwrap();
        let mut b = [0u8; 1];
        f.read(0, &mut b).unwrap();
        assert_eq!(b[0], 0xAB);
    }

    #[test]
    fn bounds_checked() {
        let mut f = SpiFlash::new(16, SpiWidth::Single);
        let mut b = [0u8; 4];
        assert!(f.read(13, &mut b).is_err());
        assert!(f.read(12, &mut b).is_ok());
    }

    #[test]
    fn image_initialization() {
        let mut f = SpiFlash::with_image(16, SpiWidth::Quad, &[1, 2, 3]);
        let mut b = [0u8; 4];
        f.read(0, &mut b).unwrap();
        assert_eq!(b, [1, 2, 3, 0xFF]);
    }

    #[test]
    fn reset_timing_forgets_burst_state() {
        let mut f = SpiFlash::new(4096, SpiWidth::Quad);
        let mut b = [0u8; 4];
        let first = f.read(0, &mut b).unwrap();
        f.read(4, &mut b).unwrap();
        f.reset_timing();
        // After reset the "sequential" address pays full cost again.
        let again = f.read(8, &mut b).unwrap();
        assert_eq!(again, first);
    }
}
