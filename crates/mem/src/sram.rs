//! On-chip block-RAM model.

use crate::device::{check_bounds, BusDevice};
use crate::error::MemError;

/// On-chip SRAM (FPGA block RAM): single-cycle access at any address.
///
/// Fomu's 128 kB "SPRAM" and the LiteX integrated SRAM both behave this
/// way. The KWS case study moves hot kernels and model weights here from
/// flash (`SRAM Ops and Model`, 7.84× cumulative speedup).
#[derive(Debug, Clone)]
pub struct Sram {
    data: Vec<u8>,
    access_cycles: u64,
}

impl Sram {
    /// Creates a zeroed SRAM of `size` bytes with 1-cycle access.
    pub fn new(size: u32) -> Self {
        Sram { data: vec![0; size as usize], access_cycles: 1 }
    }

    /// Creates an SRAM with a non-default access latency (e.g. 2-cycle
    /// registered BRAM outputs on slow corners).
    pub fn with_latency(size: u32, access_cycles: u64) -> Self {
        Sram { data: vec![0; size as usize], access_cycles }
    }
}

impl BusDevice for Sram {
    fn size(&self) -> u32 {
        self.data.len() as u32
    }

    #[inline]
    fn read(&mut self, offset: u32, buf: &mut [u8]) -> Result<u64, MemError> {
        check_bounds(self.size(), offset, buf.len())?;
        let n = buf.len();
        let src = &self.data[offset as usize..offset as usize + n];
        if n <= 4 {
            // Bus words: a byte loop compiles to direct loads where the
            // runtime-length memcpy of `copy_from_slice` costs a call.
            for (d, s) in buf.iter_mut().zip(src) {
                *d = *s;
            }
        } else {
            buf.copy_from_slice(src);
        }
        // One access per 32-bit beat.
        Ok(self.access_cycles * n.div_ceil(4) as u64)
    }

    #[inline]
    fn read_cost_run(&mut self, offset: u32, len: u32, count: u32) -> Result<u64, MemError> {
        if count == 0 {
            return Ok(0);
        }
        let span = len.checked_mul(count).ok_or(MemError::OutOfBounds { addr: offset, len: 0 })?;
        check_bounds(self.size(), offset, span as usize)?;
        Ok(self.access_cycles * (len as usize).div_ceil(4) as u64 * u64::from(count))
    }

    #[inline]
    fn timing_stateless(&self) -> bool {
        true
    }

    #[inline]
    fn write(&mut self, offset: u32, data: &[u8]) -> Result<u64, MemError> {
        check_bounds(self.size(), offset, data.len())?;
        self.data[offset as usize..offset as usize + data.len()].copy_from_slice(data);
        Ok(self.access_cycles * data.len().div_ceil(4) as u64)
    }

    fn poke(&mut self, offset: u32, data: &[u8]) -> Result<(), MemError> {
        check_bounds(self.size(), offset, data.len())?;
        self.data[offset as usize..offset as usize + data.len()].copy_from_slice(data);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_roundtrip() {
        let mut s = Sram::new(64);
        s.write(8, &[1, 2, 3, 4]).unwrap();
        let mut b = [0u8; 4];
        let cycles = s.read(8, &mut b).unwrap();
        assert_eq!(b, [1, 2, 3, 4]);
        assert_eq!(cycles, 1);
    }

    #[test]
    fn wide_access_counts_beats() {
        let mut s = Sram::new(64);
        let mut line = [0u8; 32];
        assert_eq!(s.read(0, &mut line).unwrap(), 8);
    }

    #[test]
    fn bounds() {
        let mut s = Sram::new(8);
        assert!(s.write(6, &[0; 4]).is_err());
        assert!(s.write(4, &[0; 4]).is_ok());
    }

    #[test]
    fn custom_latency() {
        let mut s = Sram::with_latency(16, 2);
        let mut b = [0u8; 4];
        assert_eq!(s.read(0, &mut b).unwrap(), 2);
    }
}
