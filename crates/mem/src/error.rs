//! Memory access errors.

use std::fmt;

/// Error produced by a bus or device access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemError {
    /// No device is mapped at the address.
    Unmapped {
        /// The faulting absolute address.
        addr: u32,
    },
    /// The access ran past the end of the device it started in.
    OutOfBounds {
        /// The faulting absolute address.
        addr: u32,
        /// Length of the attempted access in bytes.
        len: usize,
    },
    /// A write was attempted to a read-only device (flash/ROM).
    ReadOnly {
        /// The faulting absolute address.
        addr: u32,
    },
    /// A naturally-aligned access was required but not provided.
    Misaligned {
        /// The faulting absolute address.
        addr: u32,
        /// Alignment that was required, in bytes.
        required: u32,
    },
}

impl MemError {
    /// The absolute address of the faulting access.
    pub fn addr(&self) -> u32 {
        match *self {
            MemError::Unmapped { addr }
            | MemError::OutOfBounds { addr, .. }
            | MemError::ReadOnly { addr }
            | MemError::Misaligned { addr, .. } => addr,
        }
    }
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            MemError::Unmapped { addr } => write!(f, "no device mapped at 0x{addr:08x}"),
            MemError::OutOfBounds { addr, len } => {
                write!(f, "access of {len} bytes at 0x{addr:08x} runs past device end")
            }
            MemError::ReadOnly { addr } => write!(f, "write to read-only memory at 0x{addr:08x}"),
            MemError::Misaligned { addr, required } => {
                write!(f, "address 0x{addr:08x} not aligned to {required} bytes")
            }
        }
    }
}

impl std::error::Error for MemError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_address() {
        let e = MemError::Unmapped { addr: 0xDEAD_0000 };
        assert!(e.to_string().contains("dead0000"));
        assert_eq!(e.addr(), 0xDEAD_0000);
    }
}
