//! Memory-system models for the simulated CFU Playground SoC.
//!
//! The original framework runs on LiteX SoCs whose performance is dominated
//! by the memory system: execute-in-place (XIP) SPI flash, small on-chip
//! SRAM, external DDR3 behind LiteDRAM, and the VexRiscv I/D caches. The
//! Keyword-Spotting case study in the paper gets most of its 75× speedup
//! from memory-system changes (Quad-SPI upgrade, moving hot code and model
//! weights to SRAM, enlarging the I-cache) — so this crate models those
//! devices with *first-word latency + sequential bandwidth* fidelity:
//!
//! * [`SpiFlash`] — XIP flash with configurable [`SpiWidth`] (the paper's
//!   `QuadSPI` ladder step is exactly a `SpiWidth::Single → Quad` change),
//! * [`Sram`] — single-cycle on-chip block RAM,
//! * [`Ddr3`] — external DRAM with an open-row model (Arty A7's 256 MB),
//! * [`Cache`] — set-associative write-through caches with LRU and stats,
//! * [`Bus`] — an address map routing accesses to devices and accumulating
//!   per-device traffic statistics.
//!
//! # Example
//!
//! ```
//! use cfu_mem::{Bus, Sram, SpiFlash, SpiWidth};
//!
//! # fn main() -> Result<(), cfu_mem::MemError> {
//! let mut bus = Bus::new();
//! bus.map("rom", 0x0000_0000, SpiFlash::new(2 << 20, SpiWidth::Quad));
//! bus.map("sram", 0x1000_0000, Sram::new(128 << 10));
//!
//! bus.write_u32(0x1000_0000, 0xdead_beef)?;
//! assert_eq!(bus.read_u32(0x1000_0000)?.value, 0xdead_beef);
//! // ROM reads work; ROM writes are rejected.
//! assert!(bus.write_u32(0x0000_0000, 1).is_err());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bus;
mod cache;
mod device;
mod dram;
mod error;
mod flash;
mod sram;

pub use bus::{Bus, DeviceStats, RegionId, RegionInfo};
pub use cache::{Cache, CacheConfig, CacheStats};
pub use device::{BusDevice, ReadResult};
pub use dram::{Ddr3, Ddr3Timing};
pub use error::MemError;
pub use flash::{SpiFlash, SpiWidth};
pub use sram::Sram;
