//! External DDR3 model (LiteDRAM-style controller).

use crate::device::{check_bounds, BusDevice};
use crate::error::MemError;

/// Timing parameters for the DDR3 model, in *system* clock cycles.
///
/// Defaults approximate an Arty A7-35T running LiteDRAM at 100 MHz system
/// clock against DDR3-800: ~20+ cycle miss penalty, fast streaming within
/// an open row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ddr3Timing {
    /// Cycles for an access that hits the currently open row (CAS + bus).
    pub row_hit: u64,
    /// Cycles for an access that must close and open a row
    /// (precharge + activate + CAS).
    pub row_miss: u64,
    /// Extra cycles per additional 32-bit beat of a burst.
    pub per_beat: u64,
    /// Bytes per DRAM row (determines hit locality).
    pub row_bytes: u32,
    /// Number of banks (independent open rows).
    pub banks: u32,
}

impl Default for Ddr3Timing {
    fn default() -> Self {
        Ddr3Timing { row_hit: 6, row_miss: 22, per_beat: 1, row_bytes: 2048, banks: 8 }
    }
}

/// External DDR3 memory with a per-bank open-row model.
///
/// This is the Arty A7 board's 256 MB main memory. The MobileNetV2 case
/// study holds its working set here; conv kernels stream weights and
/// activations, so open-row hits dominate once the access pattern is
/// regular.
#[derive(Debug, Clone)]
pub struct Ddr3 {
    data: Vec<u8>,
    timing: Ddr3Timing,
    open_rows: Vec<Option<u32>>,
    /// `log2(row_bytes)` — validated power of two; keeps the per-access
    /// row math free of integer divides.
    row_shift: u32,
    /// `banks - 1` when the bank count is a power of two (the common
    /// case); `None` falls back to `%`.
    bank_mask: Option<u32>,
}

impl Ddr3 {
    /// Creates a zeroed DDR3 of `size` bytes with default timing.
    pub fn new(size: u32) -> Self {
        Self::with_timing(size, Ddr3Timing::default())
    }

    /// Creates a DDR3 with explicit timing parameters.
    ///
    /// # Panics
    ///
    /// Panics if `timing.banks` is zero or `timing.row_bytes` is not a
    /// power of two.
    pub fn with_timing(size: u32, timing: Ddr3Timing) -> Self {
        assert!(timing.banks > 0, "need at least one bank");
        assert!(timing.row_bytes.is_power_of_two(), "row size must be a power of two");
        Ddr3 {
            data: vec![0; size as usize],
            timing,
            open_rows: vec![None; timing.banks as usize],
            row_shift: timing.row_bytes.trailing_zeros(),
            bank_mask: timing.banks.is_power_of_two().then(|| timing.banks - 1),
        }
    }

    fn bank_of(&self, row: u32) -> usize {
        match self.bank_mask {
            Some(m) => (row & m) as usize,
            None => (row % self.timing.banks) as usize,
        }
    }

    /// The configured timing parameters.
    pub fn timing(&self) -> Ddr3Timing {
        self.timing
    }

    fn access_cycles(&mut self, offset: u32, len: usize) -> u64 {
        let row = offset >> self.row_shift;
        let bank = self.bank_of(row);
        let first = if self.open_rows[bank] == Some(row) {
            self.timing.row_hit
        } else {
            self.open_rows[bank] = Some(row);
            self.timing.row_miss
        };
        let beats = len.div_ceil(4) as u64;
        first + beats.saturating_sub(1) * self.timing.per_beat
    }
}

impl BusDevice for Ddr3 {
    fn size(&self) -> u32 {
        self.data.len() as u32
    }

    fn read(&mut self, offset: u32, buf: &mut [u8]) -> Result<u64, MemError> {
        check_bounds(self.size(), offset, buf.len())?;
        let n = buf.len();
        let cycles = self.access_cycles(offset, n);
        buf.copy_from_slice(&self.data[offset as usize..offset as usize + n]);
        Ok(cycles)
    }

    fn write(&mut self, offset: u32, data: &[u8]) -> Result<u64, MemError> {
        check_bounds(self.size(), offset, data.len())?;
        let cycles = self.access_cycles(offset, data.len());
        self.data[offset as usize..offset as usize + data.len()].copy_from_slice(data);
        Ok(cycles)
    }

    fn read_cost_run(&mut self, offset: u32, len: u32, count: u32) -> Result<u64, MemError> {
        if count == 0 {
            return Ok(0);
        }
        let span = len.checked_mul(count).ok_or(MemError::OutOfBounds { addr: offset, len: 0 })?;
        check_bounds(self.size(), offset, span as usize)?;
        // An ascending contiguous run touches each row at most once (the
        // model charges by an access's *starting* offset): walk the row
        // segments, paying the open-row check once per segment and a
        // guaranteed hit for every further access inside it.
        let beats_extra = ((len as usize).div_ceil(4) as u64 - 1) * self.timing.per_beat;
        let mut total = u64::from(count) * beats_extra;
        let mut k = 0u32;
        while k < count {
            let seg_off = offset + k * len;
            let row = seg_off >> self.row_shift;
            // Accesses whose starting offset stays inside `row` (row end
            // in u64: the last row of a 4 GiB device ends at 1 << 32).
            let row_end = u64::from(row + 1) << self.row_shift;
            let in_row =
                (((row_end - u64::from(seg_off)).div_ceil(u64::from(len))) as u32).min(count - k);
            let bank = self.bank_of(row);
            total += if self.open_rows[bank] == Some(row) {
                self.timing.row_hit
            } else {
                self.open_rows[bank] = Some(row);
                self.timing.row_miss
            };
            total += u64::from(in_row - 1) * self.timing.row_hit;
            k += in_row;
        }
        Ok(total)
    }

    fn poke(&mut self, offset: u32, data: &[u8]) -> Result<(), MemError> {
        check_bounds(self.size(), offset, data.len())?;
        self.data[offset as usize..offset as usize + data.len()].copy_from_slice(data);
        Ok(())
    }

    fn timing_partition_mask(&self, offset: u32, span: u32) -> u64 {
        // Each bank's open row evolves independently: the partition of an
        // access is its row's bank.
        let t = &self.timing;
        let first = offset >> self.row_shift;
        let last = ((u64::from(offset) + u64::from(span.max(1)) - 1) >> self.row_shift) as u32;
        if u64::from(last - first) + 1 >= u64::from(t.banks) {
            return if t.banks >= 64 { !0 } else { (1u64 << t.banks) - 1 };
        }
        let mut mask = 0u64;
        for row in first..=last {
            mask |= 1u64 << (self.bank_of(row) as u32 % 64);
        }
        mask
    }

    fn timing_partition_hold(&self, offset: u32, span: u32) -> (u64, u32) {
        // The mask of rows [first, last] stays a superset for any access
        // contained in them: hold until the end of the last covered row.
        let mask = self.timing_partition_mask(offset, span);
        let last = (u64::from(offset) + u64::from(span.max(1)) - 1) >> self.row_shift;
        let hold_end = ((last + 1) << self.row_shift).min(u64::from(self.size())) as u32;
        (mask, hold_end)
    }

    fn reset_timing(&mut self) {
        self.open_rows.fill(None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_hit_is_cheaper_than_miss() {
        let mut d = Ddr3::new(1 << 20);
        let mut b = [0u8; 4];
        let miss = d.read(0, &mut b).unwrap();
        let hit = d.read(4, &mut b).unwrap();
        assert_eq!(miss, Ddr3Timing::default().row_miss);
        assert_eq!(hit, Ddr3Timing::default().row_hit);
    }

    #[test]
    fn different_rows_same_bank_conflict() {
        let t = Ddr3Timing::default();
        let mut d = Ddr3::new(1 << 20);
        let mut b = [0u8; 4];
        d.read(0, &mut b).unwrap(); // opens row 0, bank 0
                                    // Row banks*row_bytes maps to bank 0 again, different row → miss.
        let conflicting = t.banks * t.row_bytes;
        assert_eq!(d.read(conflicting, &mut b).unwrap(), t.row_miss);
        // ...and the original row now misses too.
        assert_eq!(d.read(0, &mut b).unwrap(), t.row_miss);
    }

    #[test]
    fn adjacent_rows_use_different_banks() {
        let t = Ddr3Timing::default();
        let mut d = Ddr3::new(1 << 20);
        let mut b = [0u8; 4];
        d.read(0, &mut b).unwrap();
        d.read(t.row_bytes, &mut b).unwrap(); // row 1 → bank 1
                                              // Row 0 is still open in bank 0.
        assert_eq!(d.read(8, &mut b).unwrap(), t.row_hit);
    }

    #[test]
    fn burst_charges_per_beat() {
        let t = Ddr3Timing::default();
        let mut d = Ddr3::new(1 << 20);
        let mut line = [0u8; 32];
        let cycles = d.read(0, &mut line).unwrap();
        assert_eq!(cycles, t.row_miss + 7 * t.per_beat);
    }

    #[test]
    fn data_roundtrip() {
        let mut d = Ddr3::new(4096);
        d.write(100, &[9, 8, 7]).unwrap();
        let mut b = [0u8; 3];
        d.read(100, &mut b).unwrap();
        assert_eq!(b, [9, 8, 7]);
    }
}
