//! External DDR3 model (LiteDRAM-style controller).

use crate::device::{check_bounds, BusDevice};
use crate::error::MemError;

/// Timing parameters for the DDR3 model, in *system* clock cycles.
///
/// Defaults approximate an Arty A7-35T running LiteDRAM at 100 MHz system
/// clock against DDR3-800: ~20+ cycle miss penalty, fast streaming within
/// an open row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ddr3Timing {
    /// Cycles for an access that hits the currently open row (CAS + bus).
    pub row_hit: u64,
    /// Cycles for an access that must close and open a row
    /// (precharge + activate + CAS).
    pub row_miss: u64,
    /// Extra cycles per additional 32-bit beat of a burst.
    pub per_beat: u64,
    /// Bytes per DRAM row (determines hit locality).
    pub row_bytes: u32,
    /// Number of banks (independent open rows).
    pub banks: u32,
}

impl Default for Ddr3Timing {
    fn default() -> Self {
        Ddr3Timing { row_hit: 6, row_miss: 22, per_beat: 1, row_bytes: 2048, banks: 8 }
    }
}

/// External DDR3 memory with a per-bank open-row model.
///
/// This is the Arty A7 board's 256 MB main memory. The MobileNetV2 case
/// study holds its working set here; conv kernels stream weights and
/// activations, so open-row hits dominate once the access pattern is
/// regular.
#[derive(Debug, Clone)]
pub struct Ddr3 {
    data: Vec<u8>,
    timing: Ddr3Timing,
    open_rows: Vec<Option<u32>>,
}

impl Ddr3 {
    /// Creates a zeroed DDR3 of `size` bytes with default timing.
    pub fn new(size: u32) -> Self {
        Self::with_timing(size, Ddr3Timing::default())
    }

    /// Creates a DDR3 with explicit timing parameters.
    ///
    /// # Panics
    ///
    /// Panics if `timing.banks` is zero or `timing.row_bytes` is not a
    /// power of two.
    pub fn with_timing(size: u32, timing: Ddr3Timing) -> Self {
        assert!(timing.banks > 0, "need at least one bank");
        assert!(timing.row_bytes.is_power_of_two(), "row size must be a power of two");
        Ddr3 { data: vec![0; size as usize], timing, open_rows: vec![None; timing.banks as usize] }
    }

    /// The configured timing parameters.
    pub fn timing(&self) -> Ddr3Timing {
        self.timing
    }

    fn access_cycles(&mut self, offset: u32, len: usize) -> u64 {
        let row = offset / self.timing.row_bytes;
        let bank = (row % self.timing.banks) as usize;
        let first = if self.open_rows[bank] == Some(row) {
            self.timing.row_hit
        } else {
            self.open_rows[bank] = Some(row);
            self.timing.row_miss
        };
        let beats = len.div_ceil(4) as u64;
        first + beats.saturating_sub(1) * self.timing.per_beat
    }
}

impl BusDevice for Ddr3 {
    fn size(&self) -> u32 {
        self.data.len() as u32
    }

    fn read(&mut self, offset: u32, buf: &mut [u8]) -> Result<u64, MemError> {
        check_bounds(self.size(), offset, buf.len())?;
        let n = buf.len();
        let cycles = self.access_cycles(offset, n);
        buf.copy_from_slice(&self.data[offset as usize..offset as usize + n]);
        Ok(cycles)
    }

    fn write(&mut self, offset: u32, data: &[u8]) -> Result<u64, MemError> {
        check_bounds(self.size(), offset, data.len())?;
        let cycles = self.access_cycles(offset, data.len());
        self.data[offset as usize..offset as usize + data.len()].copy_from_slice(data);
        Ok(cycles)
    }

    fn poke(&mut self, offset: u32, data: &[u8]) -> Result<(), MemError> {
        check_bounds(self.size(), offset, data.len())?;
        self.data[offset as usize..offset as usize + data.len()].copy_from_slice(data);
        Ok(())
    }

    fn reset_timing(&mut self) {
        self.open_rows.fill(None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_hit_is_cheaper_than_miss() {
        let mut d = Ddr3::new(1 << 20);
        let mut b = [0u8; 4];
        let miss = d.read(0, &mut b).unwrap();
        let hit = d.read(4, &mut b).unwrap();
        assert_eq!(miss, Ddr3Timing::default().row_miss);
        assert_eq!(hit, Ddr3Timing::default().row_hit);
    }

    #[test]
    fn different_rows_same_bank_conflict() {
        let t = Ddr3Timing::default();
        let mut d = Ddr3::new(1 << 20);
        let mut b = [0u8; 4];
        d.read(0, &mut b).unwrap(); // opens row 0, bank 0
                                    // Row banks*row_bytes maps to bank 0 again, different row → miss.
        let conflicting = t.banks * t.row_bytes;
        assert_eq!(d.read(conflicting, &mut b).unwrap(), t.row_miss);
        // ...and the original row now misses too.
        assert_eq!(d.read(0, &mut b).unwrap(), t.row_miss);
    }

    #[test]
    fn adjacent_rows_use_different_banks() {
        let t = Ddr3Timing::default();
        let mut d = Ddr3::new(1 << 20);
        let mut b = [0u8; 4];
        d.read(0, &mut b).unwrap();
        d.read(t.row_bytes, &mut b).unwrap(); // row 1 → bank 1
                                              // Row 0 is still open in bank 0.
        assert_eq!(d.read(8, &mut b).unwrap(), t.row_hit);
    }

    #[test]
    fn burst_charges_per_beat() {
        let t = Ddr3Timing::default();
        let mut d = Ddr3::new(1 << 20);
        let mut line = [0u8; 32];
        let cycles = d.read(0, &mut line).unwrap();
        assert_eq!(cycles, t.row_miss + 7 * t.per_beat);
    }

    #[test]
    fn data_roundtrip() {
        let mut d = Ddr3::new(4096);
        d.write(100, &[9, 8, 7]).unwrap();
        let mut b = [0u8; 3];
        d.read(100, &mut b).unwrap();
        assert_eq!(b, [9, 8, 7]);
    }
}
