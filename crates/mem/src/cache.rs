//! Set-associative cache model (VexRiscv-style I/D caches).

/// Geometry of a cache.
///
/// VexRiscv caches are configured by total size, way count and 32-byte
/// lines; the paper's KWS study trades SoC features for a *larger I-cache*
/// (`Larger Icache`, 8.3× cumulative) — in this model that is just a bigger
/// [`size_bytes`](CacheConfig::size_bytes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u32,
    /// Associativity (1 = direct mapped).
    pub ways: u32,
    /// Line size in bytes (power of two).
    pub line_bytes: u32,
}

impl CacheConfig {
    /// A VexRiscv-ish default: 4 KiB, 1 way, 32-byte lines.
    pub fn vexriscv_default() -> Self {
        CacheConfig { size_bytes: 4096, ways: 1, line_bytes: 32 }
    }

    /// Number of sets implied by the geometry.
    pub fn sets(&self) -> u32 {
        self.size_bytes / (self.ways * self.line_bytes)
    }

    /// Validates the geometry.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if !self.line_bytes.is_power_of_two() || self.line_bytes < 4 {
            return Err(format!("line size {} must be a power of two >= 4", self.line_bytes));
        }
        if self.ways == 0 {
            return Err("cache must have at least one way".to_owned());
        }
        if self.size_bytes == 0 || !self.size_bytes.is_multiple_of(self.ways * self.line_bytes) {
            return Err(format!(
                "size {} not divisible by ways*line ({}*{})",
                self.size_bytes, self.ways, self.line_bytes
            ));
        }
        if !self.sets().is_power_of_two() {
            return Err(format!("set count {} must be a power of two", self.sets()));
        }
        Ok(())
    }
}

/// Hit/miss/eviction counters for one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that hit.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Misses that displaced a valid line.
    pub evictions: u64,
}

impl CacheStats {
    /// Total number of lookups.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit rate in `[0, 1]`; 1.0 for an untouched cache.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses() == 0 {
            1.0
        } else {
            self.hits as f64 / self.accesses() as f64
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    tag: u32,
    valid: bool,
    /// Higher = more recently used.
    lru: u64,
}

/// A set-associative, write-through, no-write-allocate cache with LRU
/// replacement — the VexRiscv data-cache policy. The cache tracks only
/// tags (contents live in the backing device), which is all the timing
/// model needs.
///
/// # Example
///
/// ```
/// use cfu_mem::{Cache, CacheConfig};
/// let mut c = Cache::new(CacheConfig { size_bytes: 1024, ways: 2, line_bytes: 32 });
/// assert!(!c.lookup(0x100));  // cold miss
/// c.fill(0x100);
/// assert!(c.lookup(0x104));   // same line hits
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    lines: Vec<Line>,
    stats: CacheStats,
    tick: u64,
    /// `log2(line_bytes)` — the validated geometry guarantees powers of
    /// two, so the per-access index/tag math is shifts, not divides.
    line_shift: u32,
    /// `sets() - 1`.
    set_mask: u32,
    /// `log2(sets())`.
    set_shift: u32,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is invalid (see [`CacheConfig::validate`]).
    pub fn new(config: CacheConfig) -> Self {
        if let Err(msg) = config.validate() {
            panic!("invalid cache config: {msg}");
        }
        let total_lines = (config.sets() * config.ways) as usize;
        Cache {
            config,
            lines: vec![Line::default(); total_lines],
            stats: CacheStats::default(),
            tick: 0,
            line_shift: config.line_bytes.trailing_zeros(),
            set_mask: config.sets() - 1,
            set_shift: config.sets().trailing_zeros(),
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Clears statistics but keeps contents.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Invalidates all lines and clears statistics.
    pub fn flush(&mut self) {
        self.lines.fill(Line::default());
        self.stats = CacheStats::default();
        self.tick = 0;
    }

    fn set_index(&self, addr: u32) -> usize {
        ((addr >> self.line_shift) & self.set_mask) as usize
    }

    fn tag(&self, addr: u32) -> u32 {
        addr >> (self.line_shift + self.set_shift)
    }

    fn set_range(&self, addr: u32) -> std::ops::Range<usize> {
        let ways = self.config.ways as usize;
        let start = self.set_index(addr) * ways;
        start..start + ways
    }

    /// Looks up `addr`, updating LRU and statistics. Returns `true` on hit.
    pub fn lookup(&mut self, addr: u32) -> bool {
        self.tick += 1;
        let tag = self.tag(addr);
        let range = self.set_range(addr);
        let tick = self.tick;
        for line in &mut self.lines[range] {
            if line.valid && line.tag == tag {
                line.lru = tick;
                self.stats.hits += 1;
                return true;
            }
        }
        self.stats.misses += 1;
        false
    }

    /// Peeks whether `addr` is resident without touching LRU or stats.
    pub fn contains(&self, addr: u32) -> bool {
        let tag = self.tag(addr);
        self.lines[self.set_range(addr)].iter().any(|l| l.valid && l.tag == tag)
    }

    /// Installs the line containing `addr`, evicting the LRU way if needed.
    /// Returns the evicted line's base address, if a valid line was displaced.
    pub fn fill(&mut self, addr: u32) -> Option<u32> {
        self.tick += 1;
        let tag = self.tag(addr);
        let set = self.set_index(addr) as u32;
        let range = self.set_range(addr);
        let tick = self.tick;
        let lines = &mut self.lines[range];
        // Already resident (e.g. racing prefetch): just touch it.
        if let Some(line) = lines.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.lru = tick;
            return None;
        }
        let victim = lines
            .iter_mut()
            .min_by_key(|l| if l.valid { l.lru } else { 0 })
            .expect("cache sets are non-empty");
        let evicted = victim.valid.then(|| {
            self.stats.evictions += 1;
            (victim.tag * self.config.sets() + set) * self.config.line_bytes
        });
        *victim = Line { tag, valid: true, lru: tick };
        evicted
    }

    /// Lookup, and on miss, fill. Returns `true` on hit.
    ///
    /// Single pass over the set: the scan that finds (or fails to find)
    /// the tag also tracks the LRU victim, so a miss does not walk the
    /// ways a second time. This is the hot path of every simulated load,
    /// store and fetch.
    #[inline]
    pub fn access(&mut self, addr: u32) -> bool {
        self.tick += 1;
        let tick = self.tick;
        let tag = self.tag(addr);
        let range = self.set_range(addr);
        let mut victim = range.start;
        let mut victim_key = u64::MAX;
        for i in range {
            let line = &self.lines[i];
            if line.valid && line.tag == tag {
                self.lines[i].lru = tick;
                self.stats.hits += 1;
                return true;
            }
            // Same victim rule as `fill`: invalid lines first, else LRU;
            // strict `<` keeps the first minimum, matching `min_by_key`.
            let key = if line.valid { line.lru } else { 0 };
            if key < victim_key {
                victim_key = key;
                victim = i;
            }
        }
        self.stats.misses += 1;
        let line = &mut self.lines[victim];
        if line.valid {
            self.stats.evictions += 1;
        }
        *line = Line { tag, valid: true, lru: tick };
        false
    }

    /// Records a hit without a tag lookup, for callers that can prove the
    /// access would hit.
    ///
    /// Contract: the caller's previous operation on *this* cache was an
    /// [`access`](Cache::access) / [`fill`](Cache::fill) /
    /// [`note_hit`](Cache::note_hit) of the **same line**, with no other
    /// cache operation in between. Under that contract the line is
    /// resident and already most-recently-used, so skipping the LRU
    /// re-touch cannot change any future hit/miss/eviction decision: the
    /// relative order of last-touch times across lines is preserved, and
    /// the internal tick counter is not otherwise observable. Used by the
    /// simulator's predecoded fast path for consecutive fetches within
    /// one I-cache line.
    #[inline]
    pub fn note_hit(&mut self) {
        self.stats.hits += 1;
    }

    /// Bulk form of [`note_hit`](Cache::note_hit): records `n` proven
    /// hits at once. Same contract per counted hit; callers may defer
    /// the ticks as long as the statistics are not observed in between
    /// (hit counts have no effect on replacement decisions).
    ///
    /// For **direct-mapped** caches (`ways == 1`) the contract relaxes:
    /// any access the caller can prove resident may be counted here,
    /// regardless of what was touched in between — with a single way
    /// per set there is no replacement choice, so skipping the LRU
    /// re-touch cannot change any future hit/miss/eviction decision.
    #[inline]
    pub fn note_hits(&mut self, n: u64) {
        self.stats.hits += n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(size: u32, ways: u32) -> CacheConfig {
        CacheConfig { size_bytes: size, ways, line_bytes: 32 }
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = Cache::new(cfg(1024, 1));
        assert!(!c.access(0x40));
        assert!(c.access(0x40));
        assert!(c.access(0x5C)); // same 32B line
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn direct_mapped_conflict() {
        let mut c = Cache::new(cfg(1024, 1)); // 32 sets
        assert!(!c.access(0));
        assert!(!c.access(1024)); // same set, different tag → evicts
        assert!(!c.access(0)); // original is gone
        assert_eq!(c.stats().evictions, 2);
    }

    #[test]
    fn two_way_avoids_that_conflict() {
        let mut c = Cache::new(cfg(1024, 2));
        assert!(!c.access(0));
        assert!(!c.access(1024));
        assert!(c.access(0)); // still resident in the other way
        assert!(c.access(1024));
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = Cache::new(cfg(64, 2)); // 1 set of 2 ways
        c.access(0);
        c.access(64);
        c.access(0); // touch 0 → 64 is LRU
        c.access(128); // evicts 64
        assert!(c.contains(0));
        assert!(!c.contains(64));
        assert!(c.contains(128));
    }

    #[test]
    fn eviction_returns_displaced_address() {
        let mut c = Cache::new(cfg(64, 1));
        c.fill(0x20);
        // 64-byte direct-mapped, 2 sets of 32B: 0x20 is set 1; 0x60 also set 1.
        assert_eq!(c.fill(0x60), Some(0x20));
    }

    #[test]
    fn flush_clears_everything() {
        let mut c = Cache::new(cfg(1024, 2));
        c.access(0);
        c.flush();
        assert!(!c.contains(0));
        assert_eq!(c.stats().accesses(), 0);
    }

    #[test]
    fn invalid_geometry_panics() {
        assert!(CacheConfig { size_bytes: 1000, ways: 1, line_bytes: 32 }.validate().is_err());
        assert!(CacheConfig { size_bytes: 1024, ways: 0, line_bytes: 32 }.validate().is_err());
        assert!(CacheConfig { size_bytes: 1024, ways: 1, line_bytes: 24 }.validate().is_err());
        assert!(CacheConfig::vexriscv_default().validate().is_ok());
    }

    #[test]
    fn note_hit_matches_repeated_access_exactly() {
        // Two caches driven identically, except one replaces repeated
        // same-line accesses with `note_hit`. Contents, stats and every
        // later eviction decision must agree.
        let mut a = Cache::new(cfg(64, 2)); // 1 set of 2 ways
        let mut b = Cache::new(cfg(64, 2));
        a.access(0);
        b.access(0);
        for _ in 0..3 {
            a.access(4); // same 32B line as 0 → guaranteed hits
            b.note_hit();
        }
        a.access(64);
        b.access(64);
        a.access(128); // evicts the LRU way — must pick the same victim
        b.access(128);
        assert_eq!(a.stats(), b.stats());
        for addr in [0, 64, 128] {
            assert_eq!(a.contains(addr), b.contains(addr), "residency diverged at {addr:#x}");
        }
    }

    #[test]
    fn hit_rate_on_untouched_cache_is_one() {
        let c = Cache::new(CacheConfig::vexriscv_default());
        assert_eq!(c.stats().hit_rate(), 1.0);
    }

    #[test]
    fn larger_cache_has_better_hit_rate_on_strided_loop() {
        // The "Larger Icache" ladder step in miniature: loop over 8 KiB of
        // addresses; a 4 KiB cache thrashes, a 16 KiB cache holds it all.
        let mut small = Cache::new(cfg(4096, 1));
        let mut large = Cache::new(cfg(16384, 1));
        for _pass in 0..4 {
            for addr in (0..8192u32).step_by(32) {
                small.access(addr);
                large.access(addr);
            }
        }
        assert!(large.stats().hit_rate() > small.stats().hit_rate());
        // The large cache only cold-misses.
        assert_eq!(large.stats().misses, 8192 / 32);
    }
}
