//! The device abstraction shared by all memory models.

use std::fmt;

use crate::error::MemError;

/// Result of a timed read: the bytes were written into the caller's buffer,
/// and the device reports how many cycles the access took.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadResult<T> {
    /// The value read.
    pub value: T,
    /// Cycles the access occupied the device, per its timing model.
    pub cycles: u64,
}

/// A memory-mapped storage or peripheral device with a timing model.
///
/// Offsets passed to devices are relative to the device's base address.
/// `read`/`write` return the number of cycles the access takes; devices
/// with bursty behaviour (XIP flash, DRAM) keep internal state (last
/// address, open rows) to distinguish sequential from random accesses.
pub trait BusDevice: fmt::Debug {
    /// Size of the device's address window in bytes.
    fn size(&self) -> u32;

    /// Reads `buf.len()` bytes starting at `offset` and returns the access
    /// latency in cycles.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfBounds`] when the access runs past
    /// [`size`](Self::size).
    fn read(&mut self, offset: u32, buf: &mut [u8]) -> Result<u64, MemError>;

    /// Writes `data` starting at `offset` and returns the access latency.
    ///
    /// # Errors
    ///
    /// [`MemError::ReadOnly`] for ROMs, [`MemError::OutOfBounds`] past the
    /// end of the device.
    fn write(&mut self, offset: u32, data: &[u8]) -> Result<u64, MemError>;

    /// `true` when the device rejects stores (flash/ROM).
    fn is_rom(&self) -> bool {
        false
    }

    /// Back-door write that bypasses write protection and timing — used by
    /// loaders to install code/weights into ROM images.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfBounds`] past the end of the device.
    fn poke(&mut self, offset: u32, data: &[u8]) -> Result<(), MemError>;

    /// Timing of `count` back-to-back reads of `len` bytes each, the
    /// k-th starting at `offset + k*len` (a contiguous ascending burst),
    /// without transferring data. For an in-bounds run this must be
    /// *bit-identical* — in returned cycles and in timing-state
    /// evolution — to calling [`read`](Self::read) `count` times; the
    /// default does exactly that. Devices whose burst behaviour has a
    /// closed form override this so timing-only consumers (cache-line
    /// fills, trace replay) charge long sequential stretches in O(1).
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfBounds`] when the run leaves the device;
    /// overrides may detect this up front rather than at the first
    /// failing access.
    fn read_cost_run(&mut self, offset: u32, len: u32, count: u32) -> Result<u64, MemError> {
        let mut total = 0u64;
        let mut scratch = [0u8; 64];
        for k in 0..count {
            let off = offset + k * len;
            total += if (len as usize) <= scratch.len() {
                self.read(off, &mut scratch[..len as usize])?
            } else {
                self.read(off, &mut vec![0u8; len as usize])?
            };
        }
        Ok(total)
    }

    /// `true` when the device's access *timing* is a pure function of
    /// the access length: independent of history AND of the address,
    /// with [`reset_timing`](Self::reset_timing) a no-op. Stateless
    /// devices commute with accesses to other regions and their
    /// per-length cost can be memoized, which lets a trace replayer
    /// reorder and batch charges around them without changing any
    /// observable cycle count.
    fn timing_stateless(&self) -> bool {
        false
    }

    /// Folds the independent timing-state partitions touched by accesses
    /// in `[offset, offset + span)` into a bitmask (partition `p` sets
    /// bit `p % 64`). Devices whose timing state splits into pieces with
    /// mutually independent histories (DRAM banks) override this;
    /// accesses whose partition masks are disjoint commute — charging
    /// them in either order yields identical cycle counts and identical
    /// final timing state. The default puts the whole device in one
    /// partition (bit 0), which is always correct: masks then always
    /// intersect and callers never reorder. Irrelevant for
    /// [`timing_stateless`](Self::timing_stateless) devices.
    fn timing_partition_mask(&self, _offset: u32, _span: u32) -> u64 {
        1
    }

    /// [`timing_partition_mask`](Self::timing_partition_mask) plus a
    /// *hold range*: returns `(mask, hold_end)` such that any access
    /// `[offset2, offset2 + span2)` with `offset <= offset2` and
    /// `offset2 + span2 <= hold_end` has a partition mask that is a
    /// subset of `mask`. Callers use this to memoize the mask across a
    /// streaming access pattern (one recomputation per DRAM row instead
    /// of one per access). The default returns a degenerate hold range
    /// (`offset + span`), which is trivially valid; devices with real
    /// partitions override this alongside
    /// [`timing_partition_mask`](Self::timing_partition_mask).
    fn timing_partition_hold(&self, offset: u32, span: u32) -> (u64, u32) {
        (self.timing_partition_mask(offset, span), offset.saturating_add(span))
    }

    /// Resets timing-related state (sequential-burst trackers, open rows)
    /// without touching contents. Called between measured runs.
    fn reset_timing(&mut self) {}

    /// Downcast support for peripherals whose host-side state must be
    /// inspected after a run (e.g. a UART's transmit buffer). Devices
    /// that opt in return `self`.
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }
}

/// Bounds-checks an access and returns the device-relative range.
pub(crate) fn check_bounds(size: u32, offset: u32, len: usize) -> Result<(), MemError> {
    let end = u64::from(offset) + len as u64;
    if end > u64::from(size) {
        Err(MemError::OutOfBounds { addr: offset, len })
    } else {
        Ok(())
    }
}
