//! The device abstraction shared by all memory models.

use std::fmt;

use crate::error::MemError;

/// Result of a timed read: the bytes were written into the caller's buffer,
/// and the device reports how many cycles the access took.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadResult<T> {
    /// The value read.
    pub value: T,
    /// Cycles the access occupied the device, per its timing model.
    pub cycles: u64,
}

/// A memory-mapped storage or peripheral device with a timing model.
///
/// Offsets passed to devices are relative to the device's base address.
/// `read`/`write` return the number of cycles the access takes; devices
/// with bursty behaviour (XIP flash, DRAM) keep internal state (last
/// address, open rows) to distinguish sequential from random accesses.
pub trait BusDevice: fmt::Debug {
    /// Size of the device's address window in bytes.
    fn size(&self) -> u32;

    /// Reads `buf.len()` bytes starting at `offset` and returns the access
    /// latency in cycles.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfBounds`] when the access runs past
    /// [`size`](Self::size).
    fn read(&mut self, offset: u32, buf: &mut [u8]) -> Result<u64, MemError>;

    /// Writes `data` starting at `offset` and returns the access latency.
    ///
    /// # Errors
    ///
    /// [`MemError::ReadOnly`] for ROMs, [`MemError::OutOfBounds`] past the
    /// end of the device.
    fn write(&mut self, offset: u32, data: &[u8]) -> Result<u64, MemError>;

    /// `true` when the device rejects stores (flash/ROM).
    fn is_rom(&self) -> bool {
        false
    }

    /// Back-door write that bypasses write protection and timing — used by
    /// loaders to install code/weights into ROM images.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfBounds`] past the end of the device.
    fn poke(&mut self, offset: u32, data: &[u8]) -> Result<(), MemError>;

    /// Resets timing-related state (sequential-burst trackers, open rows)
    /// without touching contents. Called between measured runs.
    fn reset_timing(&mut self) {}

    /// Downcast support for peripherals whose host-side state must be
    /// inspected after a run (e.g. a UART's transmit buffer). Devices
    /// that opt in return `self`.
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }
}

/// Bounds-checks an access and returns the device-relative range.
pub(crate) fn check_bounds(size: u32, offset: u32, len: usize) -> Result<(), MemError> {
    let end = u64::from(offset) + len as u64;
    if end > u64::from(size) {
        Err(MemError::OutOfBounds { addr: offset, len })
    } else {
        Ok(())
    }
}
