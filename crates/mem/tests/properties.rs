//! Property tests for the memory system: cache invariants, bus routing,
//! device timing monotonicity.

use cfu_mem::{Bus, Cache, CacheConfig, Ddr3, SpiFlash, SpiWidth, Sram};
use proptest::prelude::*;

fn arb_geometry() -> impl Strategy<Value = CacheConfig> {
    (0u32..4, 0u32..3, 0u32..3).prop_map(|(size_pow, ways_pow, line_pow)| CacheConfig {
        size_bytes: 1024 << size_pow,
        ways: 1 << ways_pow,
        line_bytes: 16 << line_pow,
    })
}

proptest! {
    /// After a fill, the line is resident until something evicts it; an
    /// immediate re-access always hits.
    #[test]
    fn fill_then_hit(cfg in arb_geometry(), addrs in proptest::collection::vec(any::<u32>(), 1..200)) {
        let mut cache = Cache::new(cfg);
        for &addr in &addrs {
            cache.fill(addr);
            prop_assert!(cache.contains(addr), "just-filled line missing");
            prop_assert!(cache.lookup(addr), "just-filled line misses");
        }
    }

    /// The cache never holds more distinct lines than its capacity.
    #[test]
    fn capacity_never_exceeded(cfg in arb_geometry(), addrs in proptest::collection::vec(any::<u32>(), 1..500)) {
        let mut cache = Cache::new(cfg);
        for &addr in &addrs {
            cache.access(addr);
        }
        let capacity = (cfg.sets() * cfg.ways) as usize;
        let line = cfg.line_bytes;
        let resident = addrs
            .iter()
            .map(|a| a / line * line)
            .collect::<std::collections::HashSet<_>>()
            .into_iter()
            .filter(|&base| cache.contains(base))
            .count();
        prop_assert!(resident <= capacity, "{resident} lines > capacity {capacity}");
    }

    /// Accesses within one line after an access always hit.
    #[test]
    fn same_line_hits(cfg in arb_geometry(), addr in any::<u32>(), off in 0u32..16) {
        let mut cache = Cache::new(cfg);
        cache.access(addr);
        let same_line = (addr & !(cfg.line_bytes - 1)) + (off % cfg.line_bytes);
        prop_assert!(cache.lookup(same_line));
    }

    /// Hit + miss counters always equal total lookups.
    #[test]
    fn stats_balance(addrs in proptest::collection::vec(any::<u32>(), 1..300)) {
        let mut cache = Cache::new(CacheConfig::vexriscv_default());
        for &a in &addrs {
            cache.access(a);
        }
        prop_assert_eq!(cache.stats().accesses(), addrs.len() as u64);
    }

    /// SRAM read-back returns exactly what was written, at any offset.
    #[test]
    fn sram_roundtrip(writes in proptest::collection::vec((0u32..4000, any::<u8>()), 1..100)) {
        use cfu_mem::BusDevice;
        let mut s = Sram::new(4096);
        let mut model = vec![0u8; 4096];
        for &(addr, val) in &writes {
            s.write(addr, &[val]).unwrap();
            model[addr as usize] = val;
        }
        for &(addr, _) in &writes {
            let mut b = [0u8; 1];
            s.read(addr, &mut b).unwrap();
            prop_assert_eq!(b[0], model[addr as usize]);
        }
    }

    /// Flash timing: sequential streaming never costs more than random
    /// access, and wider SPI is never slower.
    #[test]
    fn flash_timing_monotone(offsets in proptest::collection::vec(0u32..4096u32, 2..50)) {
        use cfu_mem::BusDevice;
        let mut single = SpiFlash::new(8192, SpiWidth::Single);
        let mut quad = SpiFlash::new(8192, SpiWidth::Quad);
        let mut b = [0u8; 4];
        for &off in &offsets {
            let off = off & !3;
            let s = single.read(off, &mut b).unwrap();
            let q = quad.read(off, &mut b).unwrap();
            prop_assert!(q <= s, "quad {q} > single {s}");
        }
    }

    /// DDR3: row hits are never slower than row misses, and data
    /// round-trips.
    #[test]
    fn ddr3_row_locality(base in 0u32..(1 << 18), vals in any::<[u8; 4]>()) {
        use cfu_mem::BusDevice;
        let mut d = Ddr3::new(1 << 20);
        let base = base & !3;
        d.write(base, &vals).unwrap();
        let mut buf = [0u8; 4];
        let first = d.read(base, &mut buf).unwrap();
        prop_assert_eq!(buf, vals);
        let second = d.read(base, &mut buf).unwrap();
        prop_assert!(second <= first, "repeat read slower: {second} > {first}");
    }

    /// Bus routing: any address inside a mapped region reads back what a
    /// direct poke installed; unmapped addresses fault.
    #[test]
    fn bus_routing(addr in 0u32..8192, val in any::<u8>()) {
        let mut bus = Bus::new();
        bus.map("a", 0, Sram::new(4096));
        bus.map("b", 0x8000, Sram::new(4096));
        let target = if addr < 4096 { addr } else { 0x8000 + (addr - 4096) };
        bus.load_image(target, &[val]).unwrap();
        prop_assert_eq!(bus.read_u8(target).unwrap().value, val);
        prop_assert!(bus.read_u8(0x4000 + (addr % 4096)).is_err());
    }
}
